"""Adversarial injection plans: who injects what, when — as pure data.

The stock workload is the report's Bernoulli injection application: every
injector generates one uniformly-addressed packet per step.  Adversarial
queueing theory (Andrews et al., "Source Routing and Scheduling in Packet
Networks") instead gives an *adversary* control of injection time, source
and destination, subject only to a rate bound.  An
:class:`InjectionPlan` captures one such adversary as a replayable
script: a sorted sequence of ``(step, node, dest)`` generation events,
at most one per router per step (the rate-1 bound of the bufferless
model; rates below 1 thin the schedule).

Determinism contract
--------------------
Exactly like :mod:`repro.faults`: a plan is *data*.  Generator
strategies (:func:`generate_injection_plan`) expand a ``(strategy, rate,
seed)`` triple into a concrete script once, using a dedicated RNG stream
derived from the plan seed — never the traffic or engine seed — so the
same inputs always produce the same script, every engine sees the
identical workload, and any Time Warp rollback interleaving re-executes
the identical injections.  The router draws only the arrival *jitter*
from its own reversible stream at injection time; the adversary's
decisions are fixed before the run starts and are logged verbatim to the
obs JSONL stream (``adversary`` lines) for forensics.

Strategies
----------
* ``hotspot`` — every packet targets one of ``hotspots`` evenly-spread
  sink routers; sources generate with probability ``rate`` per step.
  Saturates the sinks' four input links and exercises the deflection
  field around them.
* ``transpose`` — router ``(r, c)`` sends only to ``(c, r)``: the classic
  worst case for dimension-ordered schemes (all traffic crosses the
  diagonal).
* ``tornado`` — router ``(r, c)`` sends to ``(r, (c + cols//2) mod
  cols)``: maximal-distance row traffic that defeats nearest-neighbor
  load balancing.
* ``burst`` — alternating on/off windows (``burst_len`` steps generating
  at ``rate``, then ``burst_gap`` silent steps) with uniform random
  destinations: a bursty arrival process with the same long-run rate as
  a thinner Bernoulli feed.
* ``script`` — an explicit entry list (the replayable-adversary form);
  :func:`generate_injection_plan` never produces it, scenario files do.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Mapping

from repro.errors import ConfigurationError
from repro.rng.streams import ReversibleStream, derive_seed

__all__ = [
    "STRATEGIES",
    "DEFAULT_ADVERSARY_SEED",
    "InjectionEvent",
    "InjectionPlan",
    "InjectionPlanError",
    "generate_injection_plan",
    "load_injection_plan",
]

#: Generator strategies (plus the explicit "script" form).
STRATEGIES = ("hotspot", "transpose", "tornado", "burst")

#: Plan-file schema version (bump on incompatible format changes).
PLAN_VERSION = 1

#: Stream id for plan expansion (shares nothing with LP traffic streams,
#: which use LP ids, nor with the fault streams 0xFA01/0xFA02).
_GENERATE_STREAM = 0xAD01

#: Default adversary seed, distinct from the engine's 0x5EED and the
#: fault subsystem's 0xFA117 defaults.
DEFAULT_ADVERSARY_SEED = 0xAD5A17


class InjectionPlanError(ConfigurationError):
    """An injection plan is malformed or inconsistent with the topology."""


@dataclass(frozen=True)
class InjectionEvent:
    """One adversary decision: ``node`` generates a packet for ``dest``
    at ``step`` (injected as soon after as a free link allows)."""

    step: int
    node: int
    dest: int

    def to_dict(self) -> dict:
        """JSON form (round-trips through :meth:`from_dict`)."""
        return {"step": self.step, "node": self.node, "dest": self.dest}

    @classmethod
    def from_dict(cls, doc: Mapping) -> "InjectionEvent":
        try:
            return cls(
                step=int(doc["step"]),
                node=int(doc["node"]),
                dest=int(doc["dest"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise InjectionPlanError(
                f"bad injection event {dict(doc)!r}: {exc}"
            ) from None


@dataclass(frozen=True)
class InjectionPlan:
    """One adversary's full injection script (see module docstring)."""

    entries: tuple[InjectionEvent, ...] = ()
    #: Strategy that generated the script ("script" for explicit lists).
    strategy: str = "script"
    #: Generation probability per (injector, step) the strategy used.
    rate: float = 1.0
    #: Seed of the expansion RNG stream.
    seed: int = DEFAULT_ADVERSARY_SEED

    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """True when the adversary injects nothing."""
        return not self.entries

    def validate(self, num_nodes: int | None = None) -> None:
        """Raise :class:`InjectionPlanError` on structural inconsistency.

        Checks ranges, self-addressed packets, and the rate bound: at
        most one generation per ``(node, step)`` pair, with per-node
        steps strictly increasing in entry order (which is what lets the
        router consume the script with a single cursor).
        """
        if not 0.0 <= self.rate <= 1.0:
            raise InjectionPlanError(
                f"rate must be in [0, 1], got {self.rate}"
            )
        last_step: dict[int, int] = {}
        for ev in self.entries:
            if ev.step < 0:
                raise InjectionPlanError(
                    f"injection step must be >= 0, got {ev.step}"
                )
            for what, who in (("node", ev.node), ("dest", ev.dest)):
                if who < 0 or (num_nodes is not None and who >= num_nodes):
                    raise InjectionPlanError(
                        f"injection {what} {who} out of range"
                        + (f" 0..{num_nodes - 1}" if num_nodes is not None else "")
                    )
            if ev.node == ev.dest:
                raise InjectionPlanError(
                    f"router {ev.node} cannot inject a packet addressed "
                    f"to itself (step {ev.step})"
                )
            prev = last_step.get(ev.node)
            if prev is not None and ev.step <= prev:
                raise InjectionPlanError(
                    f"router {ev.node}: generation steps must strictly "
                    f"increase ({prev} then {ev.step}) — the adversary is "
                    "rate-bounded to one packet per router per step"
                )
            last_step[ev.node] = ev.step

    def compile(self, num_nodes: int) -> tuple[tuple, ...]:
        """Per-node scripts: ``scripts[i]`` is a tuple of ``(step, dest)``
        pairs in increasing step order (empty for non-injecting routers).

        The router consumes its script with ``head_gen_step`` as a
        cursor, so injection is O(1) per step and exactly reversible.
        """
        per_node: list[list] = [[] for _ in range(num_nodes)]
        for ev in self.entries:
            per_node[ev.node].append((ev.step, ev.dest))
        return tuple(tuple(s) for s in per_node)

    # ------------------------------------------------------------------
    # Serialisation.
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready dict (round-trips through :meth:`from_dict`)."""
        return {
            "version": PLAN_VERSION,
            "strategy": self.strategy,
            "rate": self.rate,
            "seed": self.seed,
            "entries": [ev.to_dict() for ev in self.entries],
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "InjectionPlan":
        version = doc.get("version", PLAN_VERSION)
        if version != PLAN_VERSION:
            raise InjectionPlanError(
                f"injection plan version {version!r} is not the supported "
                f"version {PLAN_VERSION}"
            )
        try:
            return cls(
                entries=tuple(
                    InjectionEvent.from_dict(e) for e in doc.get("entries", ())
                ),
                strategy=str(doc.get("strategy", "script")),
                rate=float(doc.get("rate", 1.0)),
                seed=int(doc.get("seed", DEFAULT_ADVERSARY_SEED)),
            )
        except (TypeError, ValueError, AttributeError) as exc:
            raise InjectionPlanError(
                f"malformed injection plan: {exc}"
            ) from None

    def to_json(self) -> str:
        """Canonical JSON text (sorted keys, exact round-trip)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def dump(self, target: str | Path | IO[str]) -> None:
        """Write the plan as JSON to a path or open text stream."""
        text = self.to_json()
        if isinstance(target, (str, Path)):
            Path(target).write_text(text)
        else:
            target.write(text)


def load_injection_plan(source: str | Path | IO[str]) -> InjectionPlan:
    """Load an :class:`InjectionPlan` from a JSON path or open stream."""
    if isinstance(source, (str, Path)):
        text = Path(source).read_text()
    else:
        text = source.read()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise InjectionPlanError(
            f"injection plan is not valid JSON: {exc}"
        ) from None
    if not isinstance(doc, dict):
        raise InjectionPlanError("injection plan JSON must be an object")
    return InjectionPlan.from_dict(doc)


# ----------------------------------------------------------------------
# Strategy expansion.
# ----------------------------------------------------------------------
def generate_injection_plan(
    topo,
    *,
    strategy: str,
    duration: float,
    rate: float = 1.0,
    seed: int = DEFAULT_ADVERSARY_SEED,
    hotspots: int = 1,
    burst_len: int = 8,
    burst_gap: int = 8,
) -> InjectionPlan:
    """Expand a named strategy into a concrete :class:`InjectionPlan`.

    Routers are visited in canonical id order and steps in increasing
    order, all draws from one stream derived from ``seed``, so the same
    ``(topology shape, strategy, rate, seed)`` always yields the same
    script (the :mod:`repro.faults` expansion discipline).
    """
    if strategy not in STRATEGIES:
        raise InjectionPlanError(
            f"unknown adversary strategy {strategy!r}; choose from "
            f"{list(STRATEGIES)}"
        )
    if not 0.0 <= rate <= 1.0:
        raise InjectionPlanError(f"rate must be in [0, 1], got {rate}")
    if strategy == "burst" and (burst_len < 1 or burst_gap < 0):
        raise InjectionPlanError(
            f"burst needs burst_len >= 1 and burst_gap >= 0, got "
            f"{burst_len}/{burst_gap}"
        )
    num = topo.num_nodes
    if strategy == "hotspot" and not 1 <= hotspots <= num:
        raise InjectionPlanError(
            f"hotspots must be in 1..{num}, got {hotspots}"
        )
    steps = max(1, int(duration))
    rng = ReversibleStream(derive_seed(seed, _GENERATE_STREAM), 0)
    entries: list[InjectionEvent] = []

    if strategy == "hotspot":
        # Sink routers spread evenly over the id space (the injector
        # placement rule, reused so hotspot count and injector count are
        # load-comparable).
        sinks = tuple((i * num) // hotspots for i in range(hotspots))
        for node in range(num):
            for step in range(steps):
                if rate < 1.0 and not rng.bernoulli(rate):
                    continue
                dest = (
                    sinks[rng.integer(0, hotspots - 1)]
                    if hotspots > 1
                    else sinks[0]
                )
                if dest == node:
                    continue  # sinks don't feed themselves
                entries.append(InjectionEvent(step, node, dest))
    elif strategy in ("transpose", "tornado"):
        for node in range(num):
            r, c = topo.coords(node)
            if strategy == "transpose":
                dest = topo.node_id(c, r)
            else:
                dest = topo.node_id(r, (c + topo.cols // 2) % topo.cols)
            if dest == node:
                continue  # diagonal routers are silent under transpose
            for step in range(steps):
                if rate < 1.0 and not rng.bernoulli(rate):
                    continue
                entries.append(InjectionEvent(step, node, dest))
    else:  # burst
        period = burst_len + burst_gap
        for node in range(num):
            for step in range(steps):
                if step % period >= burst_len:
                    continue
                if rate < 1.0 and not rng.bernoulli(rate):
                    continue
                d = rng.integer(0, num - 2)
                dest = d + 1 if d >= node else d
                entries.append(InjectionEvent(step, node, dest))

    entries.sort(key=lambda e: (e.step, e.node))
    plan = InjectionPlan(
        entries=tuple(entries), strategy=strategy, rate=rate, seed=seed
    )
    plan.validate(num_nodes=num)
    return plan
