"""Declarative fault plans: what fails, when, and under which seed.

A :class:`FaultPlan` is the single source of truth for every fault a run
injects, at all three layers of the stack:

* **model faults** — timed :class:`FaultEvent` entries that fail/heal
  topology links (``link_down``/``link_up``) or crash/recover router LPs
  (``crash``/``recover``) at whole time steps,
* **transport faults** — rate-based drop/duplicate/delay of inter-PE
  messages, applied by :class:`repro.faults.transport.FaultyTransport`
  inside the optimistic engine,
* **PE stalls** — :class:`PEStall` windows during which a simulated
  processor executes nothing ("straggler injection").

Determinism contract
--------------------
A plan is *data*: model faults are a pure function of ``(plan, step)``,
so sequential, conservative and optimistic engines — and any rollback
interleaving inside Time Warp — observe exactly the same fault schedule
and commit identical results.  Randomised plans are expanded into timed
schedules once, by :func:`generate_plan`, using a dedicated RNG stream
derived from ``plan.seed`` (never from the traffic/engine seed), so the
traffic RNG streams are untouched and faults-off runs stay bit-identical
to runs of a tree without this subsystem.  Transport faults and PE
stalls perturb only *engine-level* scheduling (delivery timing, rollback
pressure); they are semantics-preserving by construction and never
change the committed sequence.

Link-fault semantics: a ``link_down`` on ``(node, direction)`` takes the
whole undirected link out of service — both endpoints stop claiming it —
from its step (inclusive) until a later ``link_up``.  Packets already in
flight over the link still arrive.  A link that is down from step 0 and
never heals is *static*: it is applied to the topology itself (see
``failed_links`` on the topology classes), so ``route_info`` steers
around it, modelling a failure known at network boot; every other fault
is discovered locally by the routers, who deflect around it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import IO, Any, Iterable, Mapping

from repro.errors import ConfigurationError
from repro.rng.streams import ReversibleStream, derive_seed

__all__ = [
    "LINK_DOWN",
    "LINK_UP",
    "CRASH",
    "RECOVER",
    "FaultEvent",
    "PEStall",
    "FaultPlan",
    "FaultPlanError",
    "generate_plan",
    "load_plan",
]

LINK_DOWN = "link_down"
LINK_UP = "link_up"
CRASH = "crash"
RECOVER = "recover"

#: All model-fault kinds; link kinds additionally carry a direction.
MODEL_KINDS = frozenset({LINK_DOWN, LINK_UP, CRASH, RECOVER})
LINK_KINDS = frozenset({LINK_DOWN, LINK_UP})

#: Plan-file schema version (bump on incompatible format changes).
PLAN_VERSION = 1

#: Stream id for the plan-expansion RNG (see :func:`generate_plan`);
#: shares nothing with LP traffic streams, which use LP ids.
_GENERATE_STREAM = 0xFA01
#: Stream id for the transport-fault RNG (see repro.faults.transport).
TRANSPORT_STREAM = 0xFA02

#: Default fault seed, distinct from the engine's 0x5EED default.
DEFAULT_FAULT_SEED = 0xFA117


class FaultPlanError(ConfigurationError):
    """A fault plan is malformed or inconsistent with the topology."""


@dataclass(frozen=True)
class FaultEvent:
    """One timed model fault: a link toggle or a router crash/recover."""

    step: int
    kind: str
    node: int
    #: Link direction (0..3, see repro.net.Direction); -1 for crash/recover.
    direction: int = -1

    def to_dict(self) -> dict:
        """JSON form; ``direction`` is emitted only for link events."""
        d = {"step": self.step, "kind": self.kind, "node": self.node}
        if self.kind in LINK_KINDS:
            d["direction"] = self.direction
        return d

    @classmethod
    def from_dict(cls, doc: Mapping) -> "FaultEvent":
        try:
            return cls(
                step=int(doc["step"]),
                kind=str(doc["kind"]),
                node=int(doc["node"]),
                direction=int(doc.get("direction", -1)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultPlanError(f"bad fault event {dict(doc)!r}: {exc}") from None


@dataclass(frozen=True)
class PEStall:
    """One straggler-injection window: PE ``pe`` skips ``rounds`` scheduler

    rounds starting at round ``start_round``.  Stalls slow a simulated
    processor without changing what it eventually computes.
    """

    pe: int
    start_round: int
    rounds: int

    def to_dict(self) -> dict:
        """JSON form of the stall window."""
        return {"pe": self.pe, "start_round": self.start_round, "rounds": self.rounds}

    @classmethod
    def from_dict(cls, doc: Mapping) -> "PEStall":
        try:
            return cls(
                pe=int(doc["pe"]),
                start_round=int(doc["start_round"]),
                rounds=int(doc["rounds"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultPlanError(f"bad PE stall {dict(doc)!r}: {exc}") from None


@dataclass(frozen=True)
class FaultPlan:
    """The full declarative fault schedule for one run (see module doc)."""

    events: tuple[FaultEvent, ...] = ()
    #: Transport-fault probabilities per cross-PE message; must sum <= 1.
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    delay_rate: float = 0.0
    #: Scheduler-round delay applied to dropped (retransmitted), delayed
    #: and duplicated messages.
    delay_rounds: int = 3
    stalls: tuple[PEStall, ...] = ()
    #: Seed of the fault RNG streams (plan expansion, transport draws).
    seed: int = DEFAULT_FAULT_SEED

    # ------------------------------------------------------------------
    @property
    def has_model_faults(self) -> bool:
        """True when any link/router fault event is scheduled."""
        return bool(self.events)

    @property
    def has_transport_faults(self) -> bool:
        """True when any transport fault rate is non-zero."""
        return (self.drop_rate + self.dup_rate + self.delay_rate) > 0.0

    @property
    def has_stalls(self) -> bool:
        """True when any PE stall window is scheduled."""
        return bool(self.stalls)

    @property
    def has_engine_faults(self) -> bool:
        """True when the plan needs engine-level installation (transport
        wrapping or stall schedules) beyond the model faults."""
        return self.has_transport_faults or self.has_stalls

    @property
    def is_empty(self) -> bool:
        """True when attaching this plan changes nothing."""
        return not (self.has_model_faults or self.has_engine_faults)

    # ------------------------------------------------------------------
    def validate(self, num_nodes: int | None = None, n_pes: int | None = None) -> None:
        """Raise :class:`FaultPlanError` on any structural inconsistency.

        Checks kinds, ranges and — per fault target — that link toggles
        and crash/recover events alternate with strictly increasing
        steps, which is what makes the compiled up/down state a total
        function of the step.  Topology-level checks (does the link
        exist?) happen at compile time, when a topology is available.
        """
        for rate, name in (
            (self.drop_rate, "drop_rate"),
            (self.dup_rate, "dup_rate"),
            (self.delay_rate, "delay_rate"),
        ):
            if not 0.0 <= rate <= 1.0:
                raise FaultPlanError(f"{name} must be in [0, 1], got {rate}")
        if self.drop_rate + self.dup_rate + self.delay_rate > 1.0 + 1e-12:
            raise FaultPlanError(
                "drop_rate + dup_rate + delay_rate must not exceed 1"
            )
        if self.delay_rounds < 1:
            raise FaultPlanError(
                f"delay_rounds must be >= 1, got {self.delay_rounds}"
            )
        link_seq: dict[tuple[int, int], tuple[int, str]] = {}
        crash_seq: dict[int, tuple[int, str]] = {}
        for ev in sorted(self.events, key=lambda e: (e.step, e.kind)):
            if ev.kind not in MODEL_KINDS:
                raise FaultPlanError(
                    f"unknown fault kind {ev.kind!r}; choose from "
                    f"{sorted(MODEL_KINDS)}"
                )
            if ev.step < 0:
                raise FaultPlanError(f"fault step must be >= 0, got {ev.step}")
            if ev.node < 0 or (num_nodes is not None and ev.node >= num_nodes):
                raise FaultPlanError(
                    f"fault node {ev.node} out of range"
                    + (f" 0..{num_nodes - 1}" if num_nodes is not None else "")
                )
            if ev.kind in LINK_KINDS:
                if not 0 <= ev.direction <= 3:
                    raise FaultPlanError(
                        f"link fault needs direction 0..3, got {ev.direction}"
                    )
                key = (ev.node, ev.direction)
                prev = link_seq.get(key)
                want_down = prev is None or prev[1] == LINK_UP
                if (ev.kind == LINK_DOWN) != want_down:
                    raise FaultPlanError(
                        f"link ({ev.node}, dir {ev.direction}): "
                        f"{ev.kind} at step {ev.step} does not alternate "
                        "down/up"
                    )
                if prev is not None and ev.step <= prev[0]:
                    raise FaultPlanError(
                        f"link ({ev.node}, dir {ev.direction}): steps must "
                        f"strictly increase ({prev[0]} then {ev.step})"
                    )
                link_seq[key] = (ev.step, ev.kind)
            else:
                prev = crash_seq.get(ev.node)
                want_crash = prev is None or prev[1] == RECOVER
                if (ev.kind == CRASH) != want_crash:
                    raise FaultPlanError(
                        f"router {ev.node}: {ev.kind} at step {ev.step} "
                        "does not alternate crash/recover"
                    )
                if prev is not None and ev.step <= prev[0]:
                    raise FaultPlanError(
                        f"router {ev.node}: steps must strictly increase "
                        f"({prev[0]} then {ev.step})"
                    )
                crash_seq[ev.node] = (ev.step, ev.kind)
        for st in self.stalls:
            if st.pe < 0 or (n_pes is not None and st.pe >= n_pes):
                raise FaultPlanError(f"stall PE {st.pe} out of range")
            if st.start_round < 0 or st.rounds < 1:
                raise FaultPlanError(
                    f"stall window must have start_round >= 0 and "
                    f"rounds >= 1, got {st}"
                )

    # ------------------------------------------------------------------
    # Serialisation.
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready dict (round-trips through :meth:`from_dict`)."""
        return {
            "version": PLAN_VERSION,
            "seed": self.seed,
            "events": [ev.to_dict() for ev in self.events],
            "transport": {
                "drop_rate": self.drop_rate,
                "dup_rate": self.dup_rate,
                "delay_rate": self.delay_rate,
                "delay_rounds": self.delay_rounds,
            },
            "stalls": [st.to_dict() for st in self.stalls],
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "FaultPlan":
        version = doc.get("version", PLAN_VERSION)
        if version != PLAN_VERSION:
            raise FaultPlanError(
                f"plan version {version!r} is not the supported "
                f"version {PLAN_VERSION}"
            )
        transport = doc.get("transport", {})
        try:
            plan = cls(
                events=tuple(
                    FaultEvent.from_dict(e) for e in doc.get("events", ())
                ),
                drop_rate=float(transport.get("drop_rate", 0.0)),
                dup_rate=float(transport.get("dup_rate", 0.0)),
                delay_rate=float(transport.get("delay_rate", 0.0)),
                delay_rounds=int(transport.get("delay_rounds", 3)),
                stalls=tuple(PEStall.from_dict(s) for s in doc.get("stalls", ())),
                seed=int(doc.get("seed", DEFAULT_FAULT_SEED)),
            )
        except (TypeError, ValueError, AttributeError) as exc:
            raise FaultPlanError(f"malformed fault plan: {exc}") from None
        return plan

    def to_json(self) -> str:
        """Canonical JSON text (sorted keys, exact round-trip)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"plan is not valid JSON: {exc}") from None
        if not isinstance(doc, dict):
            raise FaultPlanError("plan JSON must be an object")
        return cls.from_dict(doc)

    def dump(self, target: str | Path | IO[str]) -> None:
        """Write the plan as JSON to a path or open text stream."""
        text = self.to_json()
        if isinstance(target, (str, Path)):
            Path(target).write_text(text)
        else:
            target.write(text)


def load_plan(source: str | Path | IO[str]) -> FaultPlan:
    """Load a :class:`FaultPlan` from a JSON path or open text stream."""
    if isinstance(source, (str, Path)):
        return FaultPlan.from_json(Path(source).read_text())
    return FaultPlan.from_json(source.read())


# ----------------------------------------------------------------------
# Rate-based plan generation.
# ----------------------------------------------------------------------
def generate_plan(
    topo,
    *,
    duration: float,
    link_fail_rate: float = 0.0,
    heal_after: int | None = None,
    router_crash_rate: float = 0.0,
    recover_after: int | None = None,
    drop_rate: float = 0.0,
    dup_rate: float = 0.0,
    delay_rate: float = 0.0,
    delay_rounds: int = 3,
    stalls: Iterable[PEStall] = (),
    seed: int = DEFAULT_FAULT_SEED,
) -> FaultPlan:
    """Expand failure *rates* into a concrete timed :class:`FaultPlan`.

    Each physical link fails independently with probability
    ``link_fail_rate`` at a random step in the first quarter of the run
    (so failures shape most of the measurement window), healing
    ``heal_after`` steps later when given.  Each router crashes with
    probability ``router_crash_rate`` at a random step in the first half,
    recovering after ``recover_after`` steps when given.  All draws come
    from one stream derived from ``seed`` (never the traffic seed), and
    links/routers are visited in canonical id order, so the same
    ``(topo shape, rates, seed)`` always yields the same plan.
    """
    from repro.net import Direction

    steps = max(1, int(duration))
    rng = ReversibleStream(derive_seed(seed, _GENERATE_STREAM), 0)
    events: list[FaultEvent] = []
    if link_fail_rate > 0.0:
        # (node, EAST) and (node, SOUTH) enumerate every physical link of
        # a torus exactly once; on a mesh, edges without a neighbor are
        # skipped.
        for node in range(topo.num_nodes):
            for d in (Direction.EAST, Direction.SOUTH):
                if topo.neighbor(node, d) is None:
                    continue
                if not rng.bernoulli(link_fail_rate):
                    continue
                fail_step = rng.integer(0, max(0, steps // 4))
                events.append(FaultEvent(fail_step, LINK_DOWN, node, int(d)))
                if heal_after is not None:
                    heal_step = fail_step + heal_after
                    if heal_step < steps:
                        events.append(
                            FaultEvent(heal_step, LINK_UP, node, int(d))
                        )
    if router_crash_rate > 0.0:
        for node in range(topo.num_nodes):
            if not rng.bernoulli(router_crash_rate):
                continue
            crash_step = rng.integer(1, max(1, steps // 2))
            events.append(FaultEvent(crash_step, CRASH, node))
            if recover_after is not None:
                recover_step = crash_step + recover_after
                if recover_step < steps:
                    events.append(FaultEvent(recover_step, RECOVER, node))
    events.sort(key=lambda e: (e.step, e.kind, e.node, e.direction))
    plan = FaultPlan(
        events=tuple(events),
        drop_rate=drop_rate,
        dup_rate=dup_rate,
        delay_rate=delay_rate,
        delay_rounds=delay_rounds,
        stalls=tuple(stalls),
        seed=seed,
    )
    plan.validate(num_nodes=topo.num_nodes)
    return plan
