"""Transport-layer fault injection for the optimistic engine.

:class:`FaultyTransport` wraps a real transport
(:class:`~repro.core.transport.ImmediateTransport` or
:class:`~repro.core.transport.MailboxTransport`) and perturbs **cross-PE**
message delivery according to the plan's rates:

* **drop** — the message is "lost" and retransmitted after a timeout
  (``2 × delay_rounds`` scheduler rounds).  Time Warp requires reliable
  delivery — a truly lost event would change the simulation's result —
  so, as in real distributed Time Warp systems, a drop is a reliable
  transport's retransmission, which the receiver experiences as a
  long-delayed (usually straggler) message.
* **duplicate** — the message is delivered normally *and* a ghost copy
  with the same event key arrives ``delay_rounds`` rounds later.  The
  ghost is born cancelled, so it can never execute — but its arrival
  goes through the kernel's full straggler machinery and can trigger a
  genuine rollback before the pending queue annihilates it.
* **delay** — the message is held for ``delay_rounds`` rounds, then
  delivered normally.

All three are *semantics-preserving*: they reorder and re-time event
arrival, which Time Warp must tolerate by design, but never change which
events ultimately commit.  The acceptance check exploits exactly this —
a faulted optimistic run must still commit the sequential sequence.

Draws come from a dedicated forward-only stream derived from the plan
seed (stream id :data:`~repro.faults.plan.TRANSPORT_STREAM`), so the
traffic RNG is untouched; deliveries happen in deterministic kernel
order, so the same plan + seed always injects the same faults.

GVT safety: held messages and ghosts are reported through
``min_in_flight_ts`` (and ghosts are Mattern-paired with an ``on_send``
at creation), so no GVT estimate can pass an event that is still going
to arrive — the no-straggler-below-GVT invariant holds under injection.

The wrapper's ``name`` is ``"faulty"``, which is *not* ``"immediate"``:
the kernel therefore keeps its generic ``_emit``/``_receive`` paths and
never compiles the fused fast paths around the wrapper.  That is the
whole fast-path story — with no plan attached nothing is wrapped, the
name stays ``"immediate"``, and the fused paths compile exactly as
today.
"""

from __future__ import annotations

from repro.core.event import Event
from repro.faults.plan import TRANSPORT_STREAM, FaultPlan
from repro.rng.streams import ReversibleStream, derive_seed

__all__ = ["FaultyTransport"]


class FaultyTransport:
    """Wrap ``inner`` and drop/duplicate/delay cross-PE deliveries."""

    name = "faulty"

    def __init__(self, inner, plan: FaultPlan, kernel) -> None:
        self.inner = inner
        self.plan = plan
        self._kernel = kernel
        self._rng = ReversibleStream(derive_seed(plan.seed, TRANSPORT_STREAM), 0)
        self._drop = plan.drop_rate
        self._dup_edge = plan.drop_rate + plan.dup_rate
        self._delay_edge = plan.drop_rate + plan.dup_rate + plan.delay_rate
        self._delay_hold = plan.delay_rounds
        self._drop_hold = 2 * plan.delay_rounds  # retransmit timeout
        #: Held entries: ``[event, rounds_until_release, is_ghost]``.
        self._held: list[list] = []
        #: Forwarded to the inner transport (the kernel installs its GVT
        #: drop hook before the wrapper exists; keep the contract).
        self.on_drop = getattr(inner, "on_drop", None)
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        self.annihilated_held = 0

    # ------------------------------------------------------------------
    def deliver(self, event: Event, src_pe: int, dst_pe: int) -> None:
        """Deliver, possibly injecting a fault (cross-PE messages only)."""
        if src_pe == dst_pe:
            self.inner.deliver(event, src_pe, dst_pe)
            return
        u = self._rng.unif()
        if u < self._drop:
            self.dropped += 1
            self._held.append([event, self._drop_hold, False])
        elif u < self._dup_edge:
            self.duplicated += 1
            self.inner.deliver(event, src_pe, dst_pe)
            ghost = Event(event.key, event.dst, event.kind, event.data)
            ghost.cancelled = True
            # Mattern pairing: the ghost "was sent" now and will "arrive"
            # at release, keeping the epoch unbalanced (hence GVT-safe)
            # while it is in flight.  SynchronousGVT's hooks are no-ops.
            self._kernel.gvt_manager.on_send(src_pe, ghost)
            self._held.append([ghost, self._delay_hold, True])
        elif u < self._delay_edge:
            self.delayed += 1
            self._held.append([event, self._delay_hold, False])
        else:
            self.inner.deliver(event, src_pe, dst_pe)

    def flush(self) -> int:
        """Flush the inner transport, then release due held messages."""
        delivered = self.inner.flush()
        if not self._held:
            return delivered
        due: list[list] = []
        still: list[list] = []
        for item in self._held:
            item[1] -= 1
            (due if item[1] <= 0 else still).append(item)
        self._held = still
        kernel = self._kernel
        for ev, _, is_ghost in due:
            if is_ghost:
                # Full arrival path (GVT accounting + possible rollback);
                # the push counted the pre-cancelled ghost as live, so
                # balance the queue's lazy-deletion accounting by hand.
                kernel._receive(ev)
                kernel.pes[kernel.pe_of_lp[ev.dst]].pending.note_cancelled()
            elif ev.cancelled:
                # Annihilated while held — same bookkeeping as a mailbox
                # drop: GVT message accounting still sees it arrive.
                self.annihilated_held += 1
                kernel.gvt_manager.on_receive(kernel.pe_of_lp[ev.dst], ev)
            else:
                kernel._receive(ev)
                delivered += 1
        return delivered

    # ------------------------------------------------------------------
    def min_in_flight_ts(self) -> float:
        """Minimum timestamp still in flight, *including* held messages

        and ghosts — both will still arrive and may trigger rollbacks, so
        GVT must not pass them."""
        best = self.inner.min_in_flight_ts()
        for ev, _, is_ghost in self._held:
            if (is_ghost or not ev.cancelled) and ev.key.ts < best:
                best = ev.key.ts
        return best

    def in_flight_count(self) -> int:
        """Messages in transit: inner plus everything held here."""
        return self.inner.in_flight_count() + len(self._held)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultyTransport({self.inner.name}, drop={self._drop}, "
            f"held={len(self._held)})"
        )
