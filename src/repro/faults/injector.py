"""Engine-level fault driver: installs a plan's transport faults and PE
stalls into a kernel.

One :class:`EngineFaults` instance drives one run.  The engines accept it
via ``attach_faults`` (mirroring ``attach_tracer``/``attach_metrics``)
and call back into it from exactly two places:

* ``install(kernel)`` — once, before the run: wraps the kernel's
  transport in a :class:`~repro.faults.transport.FaultyTransport` when
  the plan has transport faults (which also clears the kernel's
  ``_direct`` flag, so the fused fast paths are not compiled around the
  wrapper), and compiles the plan's stall windows into per-PE sorted
  boundary tuples.
* ``stalled(pe_id, round)`` — once per PE per scheduler round, *only*
  when a driver is attached: a ``bisect`` into the precompiled bounds.
  A stalled PE simply skips its batch that round; Time Warp tolerates
  any execution-order perturbation, and the conservative engines' safety
  horizons already account for the stalled PE's pending events, so
  skipping is always safe.  Windows are finite, so runs always
  terminate.

Model faults (link/router schedules) do **not** live here — they are
compiled into per-node views by :mod:`repro.faults.views` and attached
to the router LPs by the model, so all three engines (including the
sequential oracle, which has no PEs or transport) observe the identical
fault schedule.  Engine-level faults, by contrast, are pure scheduling
perturbations that must leave committed results untouched; attaching
this driver to the sequential engine is accepted and is a no-op.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.faults.plan import FaultPlan
from repro.faults.transport import FaultyTransport
from repro.faults.views import _to_bounds, _union

__all__ = ["EngineFaults"]


class EngineFaults:
    """Per-run driver for a plan's transport faults and PE stalls."""

    def __init__(self, plan: FaultPlan) -> None:
        plan.validate()
        self.plan = plan
        #: The installed transport wrapper (None when the plan has no
        #: transport faults or the kernel has no transport).
        self.transport: FaultyTransport | None = None
        #: PE-rounds skipped due to stall windows (filled during the run).
        self.stall_rounds = 0
        self._stall_bounds: dict[int, tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    def install(self, kernel) -> "EngineFaults":
        """Hook the plan into ``kernel`` (idempotent per kernel build)."""
        plan = self.plan
        if plan.has_transport_faults and hasattr(kernel, "transport"):
            wrapper = FaultyTransport(kernel.transport, plan, kernel)
            kernel.transport = wrapper
            # The wrapper must see every delivery: force the generic
            # _emit path (the fused fast paths check this before run()).
            kernel._direct = False
            self.transport = wrapper
        if plan.has_stalls:
            per_pe: dict[int, list] = {}
            for st in plan.stalls:
                per_pe.setdefault(st.pe, []).append(
                    (st.start_round, st.start_round + st.rounds)
                )
            self._stall_bounds = {
                pe: _to_bounds(_union(ivs)) for pe, ivs in per_pe.items()
            }
        return self

    def stalled(self, pe_id: int, round_no: int) -> bool:
        """True when ``pe_id`` must skip scheduler round ``round_no``."""
        bounds = self._stall_bounds.get(pe_id)
        if bounds is not None and bisect_right(bounds, round_no) & 1:
            self.stall_rounds += 1
            return True
        return False
