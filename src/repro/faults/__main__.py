"""Fault-plan authoring CLI: generate, validate and inspect plans.

Examples
--------
Generate a plan for an 8×8 torus — 10% of links fail (healing 20 steps
later), plus mild transport chaos — and write it to a file::

    python -m repro.faults generate --n 8 --duration 60 \\
        --link-rate 0.1 --heal-after 20 --drop 0.01 --delay 0.02 \\
        --seed 7 -o plan.json

Validate a plan against a topology size::

    python -m repro.faults validate plan.json --n 8

Pretty-print what a plan will do::

    python -m repro.faults show plan.json
"""

from __future__ import annotations

import argparse
import sys

from repro.faults.plan import (
    CRASH,
    LINK_DOWN,
    LINK_UP,
    RECOVER,
    FaultPlanError,
    PEStall,
    generate_plan,
    load_plan,
)
from repro.net import Direction, MeshTopology, TorusTopology


def _parse_stall(text: str) -> PEStall:
    try:
        pe, start, rounds = (int(part) for part in text.split(":"))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"stall must be PE:START_ROUND:ROUNDS, got {text!r}"
        ) from None
    return PEStall(pe=pe, start_round=start, rounds=rounds)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Author, validate and inspect deterministic fault plans.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser(
        "generate", help="expand failure rates into a concrete timed plan"
    )
    gen.add_argument("--n", type=int, default=8, help="grid size (N×N)")
    gen.add_argument(
        "--mesh", action="store_true", help="use a mesh instead of a torus"
    )
    gen.add_argument(
        "--duration", type=float, default=60.0, help="run duration in steps"
    )
    gen.add_argument(
        "--link-rate", type=float, default=0.0,
        help="per-link failure probability",
    )
    gen.add_argument(
        "--heal-after", type=int, default=None,
        help="steps until a failed link heals (default: permanent)",
    )
    gen.add_argument(
        "--router-rate", type=float, default=0.0,
        help="per-router crash probability",
    )
    gen.add_argument(
        "--recover-after", type=int, default=None,
        help="steps until a crashed router recovers (default: permanent)",
    )
    gen.add_argument(
        "--drop", type=float, default=0.0,
        help="cross-PE message drop (retransmit) probability",
    )
    gen.add_argument(
        "--dup", type=float, default=0.0,
        help="cross-PE message duplication probability",
    )
    gen.add_argument(
        "--delay", type=float, default=0.0,
        help="cross-PE message delay probability",
    )
    gen.add_argument(
        "--delay-rounds", type=int, default=3,
        help="scheduler rounds a delayed message is held",
    )
    gen.add_argument(
        "--stall", type=_parse_stall, action="append", default=[],
        metavar="PE:START:ROUNDS", help="stall a PE for a round window",
    )
    gen.add_argument("--seed", type=lambda s: int(s, 0), default=0xFA117)
    gen.add_argument(
        "-o", "--output", default=None,
        help="write the plan here (default: stdout)",
    )

    val = sub.add_parser("validate", help="check a plan file for consistency")
    val.add_argument("plan", help="plan JSON file")
    val.add_argument(
        "--n", type=int, default=None,
        help="grid size to range-check node ids against",
    )
    val.add_argument(
        "--mesh", action="store_true",
        help="also compile against an N×N mesh (checks link existence)",
    )

    show = sub.add_parser("show", help="pretty-print what a plan will do")
    show.add_argument("plan", help="plan JSON file")
    return parser


_KIND_LABEL = {
    LINK_DOWN: "link down",
    LINK_UP: "link up",
    CRASH: "router crash",
    RECOVER: "router recover",
}


def _cmd_generate(args) -> int:
    topo = (MeshTopology if args.mesh else TorusTopology)(args.n)
    plan = generate_plan(
        topo,
        duration=args.duration,
        link_fail_rate=args.link_rate,
        heal_after=args.heal_after,
        router_crash_rate=args.router_rate,
        recover_after=args.recover_after,
        drop_rate=args.drop,
        dup_rate=args.dup,
        delay_rate=args.delay,
        delay_rounds=args.delay_rounds,
        stalls=args.stall,
        seed=args.seed,
    )
    if args.output:
        plan.dump(args.output)
        n_links = sum(1 for e in plan.events if e.kind in (LINK_DOWN,))
        print(
            f"wrote {args.output}: {len(plan.events)} fault events "
            f"({n_links} link failures), seed {plan.seed:#x}"
        )
    else:
        sys.stdout.write(plan.to_json())
    return 0


def _cmd_validate(args) -> int:
    try:
        plan = load_plan(args.plan)
        num_nodes = args.n * args.n if args.n else None
        plan.validate(num_nodes=num_nodes)
        if args.n:
            from repro.faults.views import compile_node_views, static_failed_links

            topo_cls = MeshTopology if args.mesh else TorusTopology
            static = static_failed_links(plan)
            topo = topo_cls(args.n, failed_links=static)
            compile_node_views(plan, topo)
    except (FaultPlanError, OSError) as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    print(
        f"OK: {len(plan.events)} fault events, "
        f"rates drop={plan.drop_rate} dup={plan.dup_rate} "
        f"delay={plan.delay_rate}, {len(plan.stalls)} stall windows"
    )
    return 0


def _cmd_show(args) -> int:
    try:
        plan = load_plan(args.plan)
        plan.validate()
    except (FaultPlanError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"fault plan {args.plan} (seed {plan.seed:#x})")
    if plan.events:
        print(f"  {len(plan.events)} timed fault events:")
        for ev in sorted(plan.events, key=lambda e: (e.step, e.node)):
            where = f"router {ev.node}"
            if ev.direction >= 0:
                where += f" {Direction(ev.direction).name}"
            print(f"    step {ev.step:>5}: {_KIND_LABEL[ev.kind]:<14} {where}")
    else:
        print("  no timed fault events")
    if plan.has_transport_faults:
        print(
            f"  transport: drop={plan.drop_rate} dup={plan.dup_rate} "
            f"delay={plan.delay_rate} (held {plan.delay_rounds} rounds)"
        )
    else:
        print("  transport: no faults")
    if plan.stalls:
        for st in plan.stalls:
            print(
                f"  stall: PE {st.pe} skips rounds "
                f"[{st.start_round}, {st.start_round + st.rounds})"
            )
    else:
        print("  stalls: none")
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "validate":
        return _cmd_validate(args)
    return _cmd_show(args)


if __name__ == "__main__":
    raise SystemExit(main())
