"""Deterministic, seed-driven fault injection for the simulation stack.

The subsystem is layered like the faults it injects:

* :mod:`repro.faults.plan` — the declarative :class:`FaultPlan` (timed
  link/router fault events, transport fault rates, PE stall windows),
  validation, JSON round-trip and rate-based :func:`generate_plan`.
* :mod:`repro.faults.views` — plan → per-node :class:`NodeFaults` views
  consulted by the routers, plus the static/dynamic link-failure split.
* :mod:`repro.faults.transport` — :class:`FaultyTransport`, the
  drop/duplicate/delay wrapper around the real PE transports.
* :mod:`repro.faults.injector` — :class:`EngineFaults`, the per-run
  driver the engines accept via ``attach_faults``.

Determinism: faults draw from their own RNG streams (derived from the
plan seed, never the traffic seed).  With no plan attached nothing is
wrapped or consulted — runs are bit-identical to a tree without this
package.  With a plan attached, model faults are a pure function of
``(plan, step)`` and engine faults are semantics-preserving, so the
sequential and optimistic engines still commit identical sequences.

``python -m repro.faults`` authors, validates and pretty-prints plans;
see ``docs/FAULTS.md`` for the format and guarantees.
"""

from repro.faults.injector import EngineFaults
from repro.faults.plan import (
    CRASH,
    DEFAULT_FAULT_SEED,
    LINK_DOWN,
    LINK_UP,
    RECOVER,
    FaultEvent,
    FaultPlan,
    FaultPlanError,
    PEStall,
    generate_plan,
    load_plan,
)
from repro.faults.transport import FaultyTransport
from repro.faults.views import NodeFaults, compile_node_views, static_failed_links

__all__ = [
    "CRASH",
    "DEFAULT_FAULT_SEED",
    "LINK_DOWN",
    "LINK_UP",
    "RECOVER",
    "EngineFaults",
    "FaultEvent",
    "FaultPlan",
    "FaultPlanError",
    "FaultyTransport",
    "NodeFaults",
    "PEStall",
    "compile_node_views",
    "generate_plan",
    "load_plan",
    "static_failed_links",
]
