"""Compiled per-node fault views: O(log k) "is this up at step s?" queries.

A :class:`~repro.faults.plan.FaultPlan` is authored as a list of timed
toggle events; routers need the opposite view — *given a step, which of
my links are usable and am I alive?* — and they need it cheap, because
the question sits on the routing hot path.  :func:`compile_node_views`
does the expensive work once, up front:

* link toggles are normalised to **both** endpoints of the physical link
  (a down link can be neither sent on nor claimed from either side),
* a crashed router blocks its neighbors' links *toward* it for the crash
  interval (sending into a dead router is sending into the void), merged
  by interval union with the links' own down intervals,
* each affected node gets a :class:`NodeFaults` view whose queries are a
  ``bisect`` into a sorted tuple of boundary steps — down iff the count
  of boundaries at or before the step is odd.

Nodes untouched by the plan get **no view at all** (the dict simply has
no entry), so the router keeps its ``faults is None`` fast path and a
faults-off run executes exactly the code it executes today.

Static failures — links down from step 0 that never heal — are split out
by :func:`static_failed_links` and applied to the topology itself
(``failed_links=``), modelling failures known at network boot that
``route_info`` plans around; they are excluded from the dynamic views so
the two mechanisms never double-count.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.faults.plan import CRASH, LINK_DOWN, LINK_KINDS, FaultPlan, FaultPlanError
from repro.net.directions import DIRECTIONS, Direction

__all__ = ["NodeFaults", "compile_node_views", "static_failed_links"]

_Interval = tuple[int, int | None]  # [start, end) with None = forever


class NodeFaults:
    """Read-only fault state of one router, queryable by time step.

    ``bounds`` tuples hold the sorted boundary steps of the down
    intervals; state at ``step`` is *down* iff ``bisect_right(bounds,
    step)`` is odd (intervals are closed-open: down at the down step,
    up again at the up step).
    """

    __slots__ = ("_crash", "_dirs")

    def __init__(
        self,
        crash_bounds: tuple[int, ...],
        dir_bounds: tuple[tuple[int, ...], ...],
    ) -> None:
        self._crash = crash_bounds
        self._dirs = dir_bounds

    def crashed(self, step: int) -> bool:
        """True when this router is crashed at ``step``."""
        return bool(bisect_right(self._crash, step) & 1)

    def usable(self, direction: int, step: int) -> bool:
        """True when the link in ``direction`` is up (and its far router

        alive) at ``step``."""
        return not bisect_right(self._dirs[direction], step) & 1

    def mask(
        self, base: tuple[bool, bool, bool, bool], step: int
    ) -> tuple[bool, bool, bool, bool]:
        """``base`` (the contention free-mask) with faulted links forced

        ``False``.  Called on the router hot path, but only for nodes the
        plan actually touches."""
        d = self._dirs
        return (
            base[0] and not bisect_right(d[0], step) & 1,
            base[1] and not bisect_right(d[1], step) & 1,
            base[2] and not bisect_right(d[2], step) & 1,
            base[3] and not bisect_right(d[3], step) & 1,
        )

    # ------------------------------------------------------------------
    def down_intervals(self, direction: int) -> list[_Interval]:
        """The down intervals of one direction (for reporting/tests)."""
        return _to_intervals(self._dirs[direction])

    def crash_intervals(self) -> list[_Interval]:
        """The crash intervals of this router (for reporting/tests)."""
        return _to_intervals(self._crash)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NodeFaults(crash={self._crash}, dirs={self._dirs})"


# ----------------------------------------------------------------------
# Interval algebra on boundary tuples.
# ----------------------------------------------------------------------
def _to_intervals(bounds) -> list[_Interval]:
    seq = list(bounds)
    if len(seq) % 2:
        seq.append(None)
    return [(seq[i], seq[i + 1]) for i in range(0, len(seq), 2)]


def _union(intervals: list[_Interval]) -> list[_Interval]:
    out: list[_Interval] = []
    for start, end in sorted(intervals, key=lambda iv: iv[0]):
        if out:
            cur_start, cur_end = out[-1]
            if cur_end is None or start <= cur_end:
                if cur_end is not None and (end is None or end > cur_end):
                    out[-1] = (cur_start, end)
                continue
        out.append((start, end))
    return out


def _to_bounds(intervals: list[_Interval]) -> tuple[int, ...]:
    bounds: list[int] = []
    for start, end in intervals:
        bounds.append(start)
        if end is not None:
            bounds.append(end)
    return tuple(bounds)


# ----------------------------------------------------------------------
def static_failed_links(plan: FaultPlan) -> tuple[tuple[int, int], ...]:
    """The plan's *static* link failures: down at step 0, never healed.

    Returned as sorted ``(node, direction)`` pairs ready for the
    topologies' ``failed_links=`` parameter; :func:`compile_node_views`
    excludes exactly these from the dynamic views.
    """
    toggles: dict[tuple[int, int], list] = {}
    for ev in plan.events:
        if ev.kind in LINK_KINDS:
            toggles.setdefault((ev.node, ev.direction), []).append(ev)
    return tuple(
        sorted(
            key
            for key, evs in toggles.items()
            if len(evs) == 1 and evs[0].kind == LINK_DOWN and evs[0].step == 0
        )
    )


def compile_node_views(plan: FaultPlan, topo) -> dict[int, "NodeFaults"]:
    """Compile a validated plan against a topology into per-node views.

    Returns a dict holding entries **only** for nodes the plan affects;
    every other node keeps ``faults = None`` and pays nothing.  Raises
    :class:`~repro.faults.plan.FaultPlanError` when a link event names a
    link that does not exist (mesh boundary, or masked as a static
    failure in ``topo``).
    """
    plan.validate(num_nodes=topo.num_nodes)
    static = set(static_failed_links(plan))

    # Own-link down intervals, normalised to both endpoints.
    link_iv: dict[tuple[int, int], list[_Interval]] = {}
    toggles: dict[tuple[int, int], list[int]] = {}
    for ev in sorted(plan.events, key=lambda e: e.step):
        if ev.kind not in LINK_KINDS:
            continue
        key = (ev.node, ev.direction)
        if key in static:
            continue  # handled by the topology's failed_links mask
        toggles.setdefault(key, []).append(ev.step)
    for (node, dnum), bounds in toggles.items():
        direction = Direction(dnum)
        peer = topo.neighbor(node, direction)
        if peer is None:
            raise FaultPlanError(
                f"link fault on ({node}, {direction.name}): no such link "
                f"in {topo!r}"
            )
        for end_node, end_dir in ((node, dnum), (peer, int(direction.opposite))):
            link_iv.setdefault((end_node, end_dir), []).extend(
                _to_intervals(bounds)
            )

    # Crash intervals per router.
    crash_steps: dict[int, list[int]] = {}
    for ev in sorted(plan.events, key=lambda e: e.step):
        if ev.kind in LINK_KINDS:
            continue
        crash_steps.setdefault(ev.node, []).append(ev.step)
    crash_iv = {node: _to_intervals(bounds) for node, bounds in crash_steps.items()}

    # A crashed router blackholes its neighbors' links toward it.
    for node, intervals in crash_iv.items():
        for direction in DIRECTIONS:
            peer = topo.neighbor(node, direction)
            if peer is None:
                continue
            link_iv.setdefault((peer, int(direction.opposite)), []).extend(
                intervals
            )

    views: dict[int, NodeFaults] = {}
    affected = {node for node, _ in link_iv} | set(crash_iv)
    empty: tuple[int, ...] = ()
    for node in sorted(affected):
        dirs = tuple(
            _to_bounds(_union(link_iv.get((node, d), []))) for d in range(4)
        )
        crash = _to_bounds(_union(crash_iv.get(node, [])))
        views[node] = NodeFaults(crash, dirs if any(dirs) else (empty,) * 4)
    return views
