"""TOPO — torus vs mesh comparison (§1.1's practicality argument).

Claim checked: on the same workload, the mesh's doubled diameter costs
measurably longer average delivery than the torus at every size.
"""

from benchmarks._params import TREND_PARAMS, regenerate


def test_topology_contrast(benchmark):
    table = regenerate(benchmark, "topo", TREND_PARAMS)
    cols = list(table.columns)
    idx_topo = cols.index("topology")
    idx_avg = cols.index("avg delivery")
    idx_diam = cols.index("diameter")
    by_key = {(r[0], r[idx_topo]): r for r in table.rows}
    for n in TREND_PARAMS.sizes:
        torus = by_key[(n, "torus")]
        mesh = by_key[(n, "mesh")]
        assert mesh[idx_diam] > torus[idx_diam]
        assert mesh[idx_avg] > torus[idx_avg]
