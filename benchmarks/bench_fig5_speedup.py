"""FIG5 — regenerate Figure 5 (event rate vs N for 1/2/4 PEs).

Paper claims: the 4-processor simulation runs a few times faster than the
sequential one (almost 4x at N=32, about 2x for larger networks), and the
sequential event rate does not improve as networks grow (§4.2.2).
"""

from benchmarks._params import TREND_PARAMS, regenerate


def test_fig5_speedup(benchmark):
    table = regenerate(benchmark, "fig5", TREND_PARAMS)
    one = table.column("1 PE")
    two = table.column("2 PE")
    four = table.column("4 PE")
    for o, t, f in zip(one, two, four):
        assert t > o, "2 PEs should beat sequential"
        assert f > t, "4 PEs should beat 2 PEs"
        assert 1.2 < f / o < 4.5, "4-PE speed-up in the paper's 2-4x band"
    # The sequential rate declines (cache pressure) as N grows past the
    # knee; at minimum it must not improve.
    assert one[-1] <= one[0] * 1.01
