"""ABL-SYNC — Time Warp vs conservative synchronization on the same model.

Claims checked: all protocols commit identical work; with the hot-potato
model's small lookahead (0.1 steps), Time Warp out-runs both conservative
flavours; the null-message flavour pays its overhead in null messages.
"""

from benchmarks._params import BENCH_PARAMS, regenerate


def test_ablation_sync(benchmark):
    table = regenerate(benchmark, "abl-sync", BENCH_PARAMS)
    cols = list(table.columns)
    idx_proto = cols.index("protocol")
    idx_committed = cols.index("committed")
    idx_nulls = cols.index("null msgs")
    idx_rate = cols.index("event rate")
    for n in BENCH_PARAMS.sizes:
        rows = {r[idx_proto]: r for r in table.rows if r[0] == n}
        assert set(rows) == {"time-warp", "conservative/yawns", "conservative/null"}
        committed = {r[idx_committed] for r in rows.values()}
        assert len(committed) == 1, "protocols disagreed on committed work"
        assert rows["conservative/null"][idx_nulls] > 0
        assert rows["conservative/yawns"][idx_nulls] == 0
    # Where event density per lookahead window is lowest (the smallest N),
    # conservative windows starve and Time Warp's speculation wins.
    n0 = BENCH_PARAMS.sizes[0]
    rows0 = {r[idx_proto]: r for r in table.rows if r[0] == n0}
    assert rows0["time-warp"][idx_rate] > rows0["conservative/yawns"][idx_rate]
