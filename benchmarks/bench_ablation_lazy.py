"""ABL-LAZY — aggressive vs lazy cancellation on identical workloads.

Claims checked: lazy cancellation reuses a meaningful number of messages,
commits identical work, and does not make rollback volume worse.
"""

from benchmarks._params import BENCH_PARAMS, regenerate


def test_ablation_lazy_cancellation(benchmark):
    table = regenerate(benchmark, "abl-lazy", BENCH_PARAMS)
    cols = list(table.columns)
    idx_mode = cols.index("cancellation")
    idx_committed = cols.index("committed")
    idx_rolled = cols.index("rolled back")
    idx_reused = cols.index("messages reused")
    by_key = {(row[0], row[idx_mode]): row for row in table.rows}
    for n in BENCH_PARAMS.sizes:
        agg = by_key[(n, "aggressive")]
        lazy = by_key[(n, "lazy")]
        assert agg[idx_committed] == lazy[idx_committed]
        assert agg[idx_reused] == 0
        assert lazy[idx_reused] > 0
        # Lazy must not blow up the rollback volume (usually it shrinks it).
        assert lazy[idx_rolled] <= agg[idx_rolled] * 1.5
