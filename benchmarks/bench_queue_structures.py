"""Pending-queue structures: binary heap vs ROSS's splay tree.

Real wall-clock microbenchmarks (not cost-model).  The splay tree's
amortised locality advantage shows on skewed access patterns; in CPython
the constant factors usually favour the C-implemented heapq — measuring is
the point.
"""

from repro.core.config import EngineConfig
from repro.core.event import Event
from repro.core.optimistic import run_optimistic
from repro.core.queue import make_pending_queue
from repro.models.phold import PholdConfig, PholdModel
from repro.vt.time import EventKey

PHOLD = PholdConfig(n_lps=64, jobs_per_lp=4, remote_fraction=0.7)


def _churn(queue, n=2000):
    # Hold-model churn: push two, pop one — the DES steady-state pattern.
    seq = 0
    for i in range(n):
        for _ in range(2):
            seq += 1
            queue.push(Event(EventKey(float((i * 7919) % n), 0, seq), 0, "k"))
        queue.pop()
    while queue:
        queue.pop()


def test_heap_churn(benchmark):
    benchmark(lambda: _churn(make_pending_queue("heap")))


def test_splay_churn(benchmark):
    benchmark(lambda: _churn(make_pending_queue("splay")))


def _run(queue):
    cfg = EngineConfig(
        end_time=20.0, n_pes=4, n_kps=8, batch_size=32, mapping="striped",
        queue=queue,
    )
    return run_optimistic(PholdModel(PHOLD), cfg)


def test_engine_on_heap(benchmark):
    result = benchmark(lambda: _run("heap"))
    assert result.run.committed > 0


def test_engine_on_splay(benchmark):
    result = benchmark(lambda: _run("splay"))
    assert result.run.committed > 0
