"""FIG4 — regenerate Figure 4 (avg wait-to-inject vs N) and check its shape.

Paper claims: injection wait grows approximately linearly with N within
each load, and the injection rate has a *significant* impact on the wait
(unlike its limited effect on delivery time) (§4.1).
"""

from benchmarks._params import TREND_PARAMS, regenerate


def test_fig4_injection(benchmark):
    table = regenerate(benchmark, "fig4", TREND_PARAMS)
    lo = table.column(f"{int(TREND_PARAMS.loads[0]*100)}% injectors")
    hi = table.column(f"{int(TREND_PARAMS.loads[-1]*100)}% injectors")
    # Load separates the curves strongly at every size.
    for lo_v, hi_v in zip(lo, hi):
        assert hi_v > lo_v
    # Wait grows with N under full load.
    assert hi == sorted(hi)
    # The load effect on wait is significant — larger than its effect on
    # delivery time (cross-figure claim, §4.1).
    assert hi[-1] > 1.5 * lo[-1]
