"""STATIC — the one-shot workload (Das et al. [2] configuration).

Claims checked: a full network with no further injection drains completely,
and the drain's average delivery time grows with N (static O(N) behaviour).
"""

from benchmarks._params import TREND_PARAMS, regenerate


def test_static_drain(benchmark):
    table = regenerate(benchmark, "static", TREND_PARAMS)
    idx_algo = list(table.columns).index("algorithm")
    idx_drained = list(table.columns).index("drained")
    idx_seeded = list(table.columns).index("seeded")
    idx_delivered = list(table.columns).index("delivered")
    idx_avg = list(table.columns).index("avg delivery")
    for row in table.rows:
        assert row[idx_drained] is True
        assert row[idx_delivered] == row[idx_seeded]
    busch_avgs = [r[idx_avg] for r in table.rows if r[idx_algo] == "busch"]
    assert busch_avgs == sorted(busch_avgs)  # grows with N
