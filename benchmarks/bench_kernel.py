"""Real wall-clock microbenchmarks of the Python kernel itself.

Unlike the figure benches (whose event rates come from the calibrated cost
model), these measure how fast *this* implementation executes: sequential
event throughput, Time Warp overhead, and rollback-path cost.  Useful for
tracking performance regressions in the kernel.
"""

from repro.core.config import EngineConfig
from repro.core.engine import run_sequential
from repro.core.optimistic import run_optimistic
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.model import HotPotatoModel
from repro.models.phold import PholdConfig, PholdModel

PHOLD = PholdConfig(n_lps=64, jobs_per_lp=4, remote_fraction=0.7)
END = 30.0


def test_sequential_phold_throughput(benchmark):
    result = benchmark(lambda: run_sequential(PholdModel(PHOLD), END))
    assert result.run.committed > 0


def test_optimistic_phold_no_conflicts(benchmark):
    # 1 PE: pure Time Warp bookkeeping overhead, zero rollbacks.
    cfg = EngineConfig(end_time=END, n_pes=1, n_kps=1, batch_size=64)
    result = benchmark(lambda: run_optimistic(PholdModel(PHOLD), cfg))
    assert result.run.events_rolled_back == 0


def test_optimistic_phold_with_rollbacks(benchmark):
    cfg = EngineConfig(
        end_time=END, n_pes=4, n_kps=8, batch_size=64, mapping="striped"
    )
    result = benchmark(lambda: run_optimistic(PholdModel(PHOLD), cfg))
    assert result.run.events_rolled_back > 0


def test_sequential_hotpotato_throughput(benchmark):
    cfg = HotPotatoConfig(n=8, duration=20.0, injector_fraction=1.0)
    result = benchmark(lambda: run_sequential(HotPotatoModel(cfg), cfg.duration))
    assert result.model_stats["delivered"] > 0


def test_state_saving_overhead(benchmark):
    cfg = EngineConfig(
        end_time=END, n_pes=2, n_kps=4, batch_size=32, mapping="striped",
        rollback="copy",
    )
    result = benchmark(lambda: run_optimistic(PholdModel(PHOLD), cfg))
    assert result.run.committed > 0
