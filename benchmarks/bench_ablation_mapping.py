"""ABL-MAP — LP/KP/PE mapping locality ablation.

Report claim (§3.2.3): the block mapping minimises inter-PE communication;
a random mapping makes almost every hop cross a PE boundary.
"""

from benchmarks._params import BENCH_PARAMS, regenerate


def test_ablation_mapping(benchmark):
    table = regenerate(benchmark, "abl-map", BENCH_PARAMS)
    idx_map = list(table.columns).index("mapping")
    idx_remote = list(table.columns).index("remote sends")
    by_key = {(row[0], row[idx_map]): row for row in table.rows}
    for n in BENCH_PARAMS.sizes:
        block = by_key[(n, "block")][idx_remote]
        rand = by_key[(n, "random")][idx_remote]
        assert rand > 1.5 * block, (
            f"N={n}: random mapping should send far more cross-PE messages"
        )
