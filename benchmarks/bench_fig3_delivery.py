"""FIG3 — regenerate Figure 3 (avg delivery time vs N) and check its shape.

Paper claims: delivery time grows approximately linearly with N; the
injection load has only a limited effect on it (§4.1).
"""

from benchmarks._params import TREND_PARAMS, regenerate
from repro.analysis.linfit import fit_linear


def test_fig3_delivery(benchmark):
    table = regenerate(benchmark, "fig3", TREND_PARAMS)
    sizes = table.column("N")
    for load in TREND_PARAMS.loads:
        series = table.column(f"{int(load*100)}% injectors")
        # Monotone growth with N ...
        assert series == sorted(series)
        # ... and linear, not quadratic: a straight line explains it.
        fit = fit_linear(sizes, series)
        assert fit.r_squared > 0.95, f"delivery vs N not linear at load {load}"
    # Limited load effect: full load costs < 2.5x the half-load time.
    lo = table.column(f"{int(TREND_PARAMS.loads[0]*100)}% injectors")
    hi = table.column(f"{int(TREND_PARAMS.loads[-1]*100)}% injectors")
    assert hi[-1] < 2.5 * lo[-1]
