"""FIG8 — regenerate Figure 8 (event rate vs #KPs).

Paper claims: more KPs improve the event rate of small networks (their
rollback containment outweighs the KP management overhead) (§4.2.3).
"""

from benchmarks._params import TREND_PARAMS, regenerate


def test_fig8_kp_eventrate(benchmark):
    table = regenerate(benchmark, "fig8", TREND_PARAMS)
    kp_cols = [c for c in table.columns if c.endswith("KPs")]
    few, many = kp_cols[0], kp_cols[-1]
    improved = 0
    for row_few, row_many in zip(table.column(few), table.column(many)):
        if row_few == "-" or row_many == "-":
            continue
        if row_many >= row_few * 0.98:
            improved += 1
    # More KPs help (or at worst are neutral) on these laptop-scale nets.
    assert improved >= 1
