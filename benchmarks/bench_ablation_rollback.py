"""ABL-RC — reverse computation vs state saving on identical workloads.

ROSS's design claim: reverse computation beats checkpointing because the
forward path stores (almost) nothing.  Expect a higher event rate for the
'reverse' strategy at equal rollback counts.  The PHOLD rows additionally
exercise the base-class ``snapshot_state`` flat-container fast path on
the 'copy' strategy (wall seconds, not cost-model seconds, show it).
"""

from benchmarks._params import BENCH_PARAMS, regenerate


def test_ablation_rollback_strategy(benchmark):
    table = regenerate(benchmark, "abl-rc", BENCH_PARAMS)
    by_key = {(row[0], row[1], row[2]): row for row in table.rows}
    idx_rate = list(table.columns).index("event rate")
    idx_committed = list(table.columns).index("committed")
    for n in BENCH_PARAMS.sizes:
        for workload in ("hotpotato", "phold"):
            reverse = by_key[(n, workload, "reverse")]
            copy = by_key[(n, workload, "copy")]
            # Identical committed work...
            assert reverse[idx_committed] == copy[idx_committed]
            # ...but reverse computation is faster in cost-model terms.
            assert reverse[idx_rate] > copy[idx_rate]
