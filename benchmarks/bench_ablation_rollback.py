"""ABL-RC — reverse computation vs state saving on identical workloads.

ROSS's design claim: reverse computation beats checkpointing because the
forward path stores (almost) nothing.  Expect a higher event rate for the
'reverse' strategy at equal rollback counts.
"""

from benchmarks._params import BENCH_PARAMS, regenerate


def test_ablation_rollback_strategy(benchmark):
    table = regenerate(benchmark, "abl-rc", BENCH_PARAMS)
    by_key = {(row[0], row[1]): row for row in table.rows}
    for n in BENCH_PARAMS.sizes:
        reverse = by_key[(n, "reverse")]
        copy = by_key[(n, "copy")]
        idx_rate = list(table.columns).index("event rate")
        idx_committed = list(table.columns).index("committed")
        # Identical committed work...
        assert reverse[idx_committed] == copy[idx_committed]
        # ...but reverse computation is faster.
        assert reverse[idx_rate] > copy[idx_rate]
