"""Shared sweep parameters for the benchmark harness.

Benchmarks run the same experiment code as ``python -m repro.experiments``
but at a scale that finishes on a laptop; pass ``--sizes 8,16,...,256`` to
the CLI for paper-scale sweeps.  Each ``bench_figN`` file regenerates the
corresponding figure (printing the table) and asserts the *shape* claims
the report makes about it — who wins, what grows, what shrinks.
"""

from repro.experiments.common import SweepParams

#: Laptop-scale sweep used by every figure benchmark.
BENCH_PARAMS = SweepParams(
    sizes=(4, 8),
    duration=40.0,
    loads=(0.25, 0.50, 0.75, 1.00),
    pe_counts=(1, 2, 4),
    kp_counts=(4, 8, 16),
    window=2.0,
)

#: Slightly larger sweep for benches whose claims need a size trend.
TREND_PARAMS = SweepParams(
    sizes=(4, 8, 12),
    duration=40.0,
    loads=(0.25, 1.00),
    pe_counts=(1, 2, 4),
    kp_counts=(4, 16),
    window=2.0,
)


def regenerate(benchmark, exp_id, params=BENCH_PARAMS):
    """Run one experiment exactly once under the benchmark timer."""
    from repro.experiments.figures import run_experiment

    table = benchmark.pedantic(
        run_experiment, args=(exp_id, params), rounds=1, iterations=1
    )
    print()
    print(table.to_text())
    return table
