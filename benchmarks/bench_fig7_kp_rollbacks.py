"""FIG7 — regenerate Figures 7a-c (events rolled back vs #KPs).

Paper claims: more KPs mean fewer events rolled back, because each KP
contains rollbacks to a smaller subset of LPs ("false rollbacks" shrink);
the rollback volume grows dramatically with network size (§4.2.3).
"""

from benchmarks._params import TREND_PARAMS, regenerate


def test_fig7_kp_rollbacks(benchmark):
    table = regenerate(benchmark, "fig7", TREND_PARAMS)
    kp_cols = [c for c in table.columns if c.endswith("KPs")]
    few, many = kp_cols[0], kp_cols[-1]
    for row_few, row_many in zip(table.column(few), table.column(many)):
        if row_few == "-" or row_many == "-":
            continue
        assert row_many <= row_few, "more KPs must not increase rollbacks"
    # Rollback volume grows with network size at the lowest KP count.
    series = [v for v in table.column(few) if v != "-"]
    assert series[-1] > series[0]
