"""ABL-ADAPT — fixed vs adaptive optimism on a locality-hostile mapping.

Claims checked: the throttle engages (factor < 1), commits identical work,
and substantially reduces rolled-back events versus the fixed budget.
"""

from benchmarks._params import BENCH_PARAMS, regenerate


def test_ablation_adaptive(benchmark):
    table = regenerate(benchmark, "abl-adapt", BENCH_PARAMS)
    cols = list(table.columns)
    idx_mode = cols.index("optimism")
    idx_committed = cols.index("committed")
    idx_rolled = cols.index("rolled back")
    idx_factor = cols.index("final factor")
    by_key = {(r[0], r[idx_mode]): r for r in table.rows}
    for n in BENCH_PARAMS.sizes:
        fixed = by_key[(n, "fixed")]
        adaptive = by_key[(n, "adaptive")]
        assert fixed[idx_committed] == adaptive[idx_committed]
        if fixed[idx_rolled] > 1000:  # throttle has something to regulate
            assert adaptive[idx_rolled] < fixed[idx_rolled]
            assert adaptive[idx_factor] < 1.0
