"""Profile the kernel hot path (not a benchmark — run directly).

Per the optimisation workflow (measure before optimising), this script
profiles a representative optimistic hot-potato run and prints the top
functions by cumulative time::

    python benchmarks/profile_kernel.py [--sort tottime] [--lines 25]

Historical findings captured as comments where they drove code decisions:

* event execution dominates (as it should — the kernel adds ~2-3 Python
  function calls per event on top of the model handler);
* `heapq` beats the pure-Python splay tree on CPython by constant factor
  (the splay tree exists for fidelity and for PyPy-style runtimes);
* `dict` payloads beat dataclass payloads for the ROUTE/ARRIVE hop loop.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats

from repro.core.config import EngineConfig
from repro.core.optimistic import run_optimistic
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.model import HotPotatoModel


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sort", default="cumulative", help="pstats sort key")
    parser.add_argument("--lines", type=int, default=25, help="rows to print")
    parser.add_argument("--n", type=int, default=8, help="network dimension")
    parser.add_argument("--duration", type=float, default=60.0)
    args = parser.parse_args()

    cfg = HotPotatoConfig(n=args.n, duration=args.duration, injector_fraction=1.0)
    ecfg = EngineConfig(
        end_time=cfg.duration, n_pes=4, n_kps=16, batch_size=64
    )

    profiler = cProfile.Profile()
    profiler.enable()
    result = run_optimistic(HotPotatoModel(cfg), ecfg)
    profiler.disable()

    print(
        f"{result.run.processed:,} events processed "
        f"({result.run.events_rolled_back:,} rolled back)\n"
    )
    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.lines)


if __name__ == "__main__":
    main()
