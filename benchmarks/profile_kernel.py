"""Profile the kernel hot path (not a benchmark — run directly).

Per the optimisation workflow (measure before optimising), this script
profiles a representative hot-potato run on any engine and prints the top
functions by cumulative time::

    python benchmarks/profile_kernel.py [--engine optimistic] [--seed 1]
                                        [--sort tottime] [--lines 25]
                                        [--dump before.pstats]

``--dump`` writes the raw profile to a ``pstats`` file so before/after
profiles of an optimisation PR can be diffed offline
(``pstats.Stats('before.pstats').sort_stats('tottime')``); ``--seed``
pins the run so the two profiles execute identical event sequences.

Historical findings captured as comments where they drove code decisions:

* event execution dominates (as it should — the kernel adds ~2-3 Python
  function calls per event on top of the model handler);
* `heapq` beats the pure-Python splay tree on CPython by constant factor
  (the splay tree exists for fidelity and for PyPy-style runtimes);
* `dict` payloads beat dataclass payloads for the ROUTE/ARRIVE hop loop.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats

from repro.core.config import EngineConfig
from repro.core.conservative import ConservativeConfig, run_conservative
from repro.core.engine import run_sequential
from repro.core.optimistic import run_optimistic
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.model import HotPotatoModel
from repro.obs.capture import RunCapture


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--engine",
        default="optimistic",
        choices=("sequential", "optimistic", "conservative"),
        help="engine to profile",
    )
    parser.add_argument("--seed", type=int, default=1, help="simulation seed")
    parser.add_argument("--sort", default="cumulative", help="pstats sort key")
    parser.add_argument("--lines", type=int, default=25, help="rows to print")
    parser.add_argument("--n", type=int, default=8, help="network dimension")
    parser.add_argument("--duration", type=float, default=60.0)
    parser.add_argument(
        "--queue",
        default="heap",
        choices=("heap", "ladder", "splay"),
        help="pending-queue implementation (optimistic engine only)",
    )
    parser.add_argument(
        "--cancellation",
        default="aggressive",
        choices=("aggressive", "lazy"),
        help="anti-message cancellation mode (optimistic engine only)",
    )
    parser.add_argument(
        "--executor",
        default="scalar",
        choices=("scalar", "vectorized"),
        help="LP stepping mode (vectorized = struct-of-arrays band runs)",
    )
    parser.add_argument(
        "--dump",
        metavar="FILE",
        help="also write the raw profile to FILE for offline diffing",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="also record GVT-interval metrics to FILE — the same JSONL "
        "telemetry format as the CLIs (inspect with python -m repro.obs)",
    )
    parser.add_argument(
        "--spans-out",
        metavar="FILE",
        help="also record wall-clock phase spans to FILE (may equal "
        "--metrics-out); where the profiler shows function cost, spans "
        "show which engine phase spent it",
    )
    args = parser.parse_args()

    cfg = HotPotatoConfig(n=args.n, duration=args.duration, injector_fraction=1.0)
    model = HotPotatoModel(cfg)
    capture = RunCapture(
        metrics_out=args.metrics_out,
        spans_out=args.spans_out,
        meta={
            "engine": args.engine,
            "workload": "hotpotato",
            "n": args.n,
            "duration": args.duration,
            "seed": args.seed,
        },
    )

    profiler = cProfile.Profile()
    profiler.enable()
    if args.engine == "sequential":
        result = run_sequential(
            model, cfg.duration, seed=args.seed, executor=args.executor,
            metrics=capture.metrics, spans=capture.spans,
        )
    elif args.engine == "conservative":
        ccfg = ConservativeConfig(
            end_time=cfg.duration, n_pes=4, sync="yawns", seed=args.seed,
            executor=args.executor,
        )
        result = run_conservative(
            model, ccfg, metrics=capture.metrics, spans=capture.spans,
        )
    else:
        ecfg = EngineConfig(
            end_time=cfg.duration, n_pes=4, n_kps=16, batch_size=64, seed=args.seed,
            queue=args.queue, cancellation=args.cancellation,
            executor=args.executor,
        )
        result = run_optimistic(
            model, ecfg, metrics=capture.metrics, spans=capture.spans,
        )
    profiler.disable()
    capture.finalize(result)
    if args.metrics_out or args.spans_out:
        print(f"telemetry written to {args.metrics_out or args.spans_out}")

    print(
        f"{args.engine}: {result.run.processed:,} events processed "
        f"({result.run.events_rolled_back:,} rolled back)\n"
    )
    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.lines)
    if args.dump:
        stats.dump_stats(args.dump)
        print(f"profile written to {args.dump}")


if __name__ == "__main__":
    main()
