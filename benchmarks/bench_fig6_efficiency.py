"""FIG6 — regenerate Figure 6 (efficiency = speed-up / #PE vs N).

Paper claims: efficiency is below linear everywhere, good overall, and
declines for the largest networks toward ~0.5 (§4.2.2).
"""

from benchmarks._params import TREND_PARAMS, regenerate


def test_fig6_efficiency(benchmark):
    table = regenerate(benchmark, "fig6", TREND_PARAMS)
    for col in ("2 PE", "4 PE"):
        series = table.column(col)
        for value in series:
            assert 0.3 < value <= 1.1, "efficiency stays in a sane band"
    four = table.column("4 PE")
    # Efficiency does not keep improving to the largest size: the decline
    # the report sees for big networks has set in by the end of the sweep.
    assert four[-1] <= max(four) + 1e-9
    assert four[-1] < 1.0
