"""Microbenchmarks for the reversible RNG (the hottest kernel primitive)."""

from repro.rng.streams import ReversibleStream


def test_unif_throughput(benchmark):
    s = ReversibleStream(1)

    def draw_1000():
        for _ in range(1000):
            s.unif()

    benchmark(draw_1000)
    assert s.count > 0


def test_reverse_throughput(benchmark):
    s = ReversibleStream(1)

    def draw_and_reverse_500():
        for _ in range(500):
            s.unif()
        s.reverse(500)

    benchmark(draw_and_reverse_500)
    assert s.count == 0


def test_seek_is_logarithmic(benchmark):
    s = ReversibleStream(1)

    def far_jumps():
        s.seek(10_000_000)
        s.seek(0)

    benchmark(far_jumps)
    assert s.count == 0
