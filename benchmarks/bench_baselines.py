"""ABL-BASE — routing algorithms compared, including the flow-controlled

store-and-forward network.  Headline claim (§1.2.3): hot-potato routing
achieves much higher link utilisation than flow-controlled routing.
"""

from benchmarks._params import BENCH_PARAMS, regenerate


def test_baselines(benchmark):
    table = regenerate(benchmark, "abl-base", BENCH_PARAMS)
    idx_algo = list(table.columns).index("algorithm")
    idx_util = list(table.columns).index("link util")
    idx_delivered = list(table.columns).index("delivered")
    for n in BENCH_PARAMS.sizes:
        rows = {r[idx_algo]: r for r in table.rows if r[0] == n}
        assert set(rows) == {
            "busch",
            "greedy",
            "dimension-order",
            "random-deflection",
            "buffered-flow-control",
        }
        # Every algorithm actually delivers traffic.
        for r in rows.values():
            assert r[idx_delivered] > 0
        # The paper's utilisation contrast.
        assert (
            rows["busch"][idx_util] > 1.5 * rows["buffered-flow-control"][idx_util]
        )
