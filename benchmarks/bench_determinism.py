"""DET — regenerate the Attachment-3 validation (parallel == sequential).

Paper claims: the parallel and sequential models produce identical results
under the same model configuration, hence the simulation is deterministic
and repeatable (§4.2.1).
"""

from benchmarks._params import BENCH_PARAMS, regenerate


def test_determinism_matrix(benchmark):
    table = regenerate(benchmark, "determinism", BENCH_PARAMS)
    assert all(table.column("identical")), "a configuration diverged"
    # The check is meaningful: at least one configuration really rolled
    # back work before arriving at the identical answer.
    assert any(v > 0 for v in table.column("rolled back"))
