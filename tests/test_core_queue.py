"""Unit tests for the pending-event queue with lazy cancellation."""

import pytest

from repro.core.event import Event
from repro.core.queue import PendingQueue
from repro.vt.time import EventKey


def ev(ts, origin=0, seq=0):
    return Event(EventKey(ts, origin, seq), 0, "k")


def test_pops_in_key_order():
    q = PendingQueue()
    events = [ev(3.0), ev(1.0, seq=1), ev(2.0, seq=2)]
    for e in events:
        q.push(e)
    assert [q.pop().ts for _ in range(3)] == [1.0, 2.0, 3.0]


def test_ties_break_by_origin_then_seq():
    q = PendingQueue()
    a, b = ev(1.0, origin=2, seq=0), ev(1.0, origin=1, seq=9)
    q.push(a)
    q.push(b)
    assert q.pop() is b
    assert q.pop() is a


def test_len_and_bool():
    q = PendingQueue()
    assert not q and len(q) == 0
    q.push(ev(1.0))
    assert q and len(q) == 1


def test_peek_does_not_remove():
    q = PendingQueue()
    e = ev(1.0)
    q.push(e)
    assert q.peek() is e
    assert len(q) == 1


def test_peek_key():
    q = PendingQueue()
    assert q.peek_key() is None
    q.push(ev(4.5))
    assert q.peek_key() == EventKey(4.5, 0, 0)


def test_pop_empty_raises():
    with pytest.raises(IndexError):
        PendingQueue().pop()


def test_cancelled_events_are_skipped():
    q = PendingQueue()
    a, b = ev(1.0), ev(2.0, seq=1)
    q.push(a)
    q.push(b)
    a.cancelled = True
    q.note_cancelled()
    assert len(q) == 1
    assert q.pop() is b
    assert not q


def test_in_pending_flag_lifecycle():
    q = PendingQueue()
    e = ev(1.0)
    q.push(e)
    assert e.in_pending
    q.pop()
    assert not e.in_pending


def test_dead_entry_with_duplicate_key_does_not_break_heap():
    # A cancelled event's key can legitimately be reused by a re-send
    # after rollback; the heap must never compare Event objects.
    q = PendingQueue()
    old = ev(1.0)
    q.push(old)
    old.cancelled = True
    q.note_cancelled()
    new = ev(1.0)  # identical key
    q.push(new)
    assert q.pop() is new


def test_many_interleaved_operations_keep_order():
    q = PendingQueue()
    pushed = []
    for i in range(100):
        e = ev(float((i * 37) % 50), seq=i)
        pushed.append(e)
        q.push(e)
    for i, e in enumerate(pushed):
        if i % 3 == 0:
            e.cancelled = True
            q.note_cancelled()
    popped = []
    while q:
        popped.append(q.pop())
    assert len(popped) == len([e for e in pushed if not e.cancelled])
    assert popped == sorted(popped, key=lambda e: e.key)
