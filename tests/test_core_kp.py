"""Direct unit tests for KernelProcess rollback and fossil mechanics.

The engine-level tests exercise these paths end to end; these tests pin
the KP's own contract with a real (tiny) kernel so regressions localise.
"""

from repro.core.config import EngineConfig
from repro.core.optimistic import TimeWarpKernel
from repro.models.phold import PholdConfig, PholdModel
from repro.vt.time import EventKey


def make_kernel(n_pes=2, n_kps=4):
    cfg = EngineConfig(
        end_time=50.0, n_pes=n_pes, n_kps=n_kps, batch_size=8, mapping="striped"
    )
    kernel = TimeWarpKernel(PholdModel(PholdConfig(n_lps=16, jobs_per_lp=2)), cfg)
    for lp in kernel.lps:
        lp._now = -1.0
        lp.on_init()
    return kernel


def test_processed_list_stays_key_sorted_through_rollbacks():
    kernel = make_kernel()
    for _ in range(40):
        for pe in kernel.pes:
            pe.stats.round_busy = 0.0
            pe.process_batch(kernel, 8, 50.0)
        for kp in kernel.kps:
            keys = [ev.key for ev in kp.processed]
            assert keys == sorted(keys)


def test_needs_rollback_logic():
    kernel = make_kernel()
    kp = kernel.kps[0]
    assert not kp.needs_rollback(EventKey(0.0, 0, 0))  # pristine KP
    for pe in kernel.pes:
        pe.process_batch(kernel, 20, 50.0)
    if kp.processed:
        last = kp.processed[-1].key
        assert kp.needs_rollback(EventKey(last.ts - 0.01, 0, 0))
        assert not kp.needs_rollback(EventKey(last.ts + 1.0, 0, 0))


def test_rollback_until_removes_exact_suffix():
    kernel = make_kernel(n_pes=1, n_kps=1)
    pe = kernel.pes[0]
    pe.process_batch(kernel, 30, 50.0)
    kp = kernel.kps[0]
    assert len(kp.processed) == 30
    bound = kp.processed[10].key
    undone = kp.rollback_until(bound, kernel, trigger_lp=-1)
    assert undone == 20
    assert len(kp.processed) == 10
    assert all(ev.key < bound for ev in kp.processed)
    assert kp.stats.rollbacks == 1
    assert kp.stats.events_rolled_back == 20
    # All 20 went back to pending for re-execution.
    assert len(pe.pending) >= 20


def test_rollback_until_noop_below_everything():
    kernel = make_kernel(n_pes=1, n_kps=1)
    kernel.pes[0].process_batch(kernel, 10, 50.0)
    kp = kernel.kps[0]
    high = EventKey(999.0, 0, 0)
    assert kp.rollback_until(high, kernel, trigger_lp=-1) == 0
    assert kp.stats.rollbacks == 0


def test_fossil_collect_prefix_only():
    kernel = make_kernel(n_pes=1, n_kps=1)
    kernel.pes[0].process_batch(kernel, 30, 50.0)
    kp = kernel.kps[0]
    mid_ts = kp.processed[15].key.ts
    removed = kp.fossil_collect(mid_ts, kernel)
    assert removed > 0
    assert all(ev.key.ts >= mid_ts for ev in kp.processed)
    # Idempotent at the same GVT.
    assert kp.fossil_collect(mid_ts, kernel) == 0


def test_fossil_never_frees_at_or_above_gvt():
    # DESIGN.md invariant 7.
    kernel = make_kernel(n_pes=1, n_kps=1)
    kernel.pes[0].process_batch(kernel, 30, 50.0)
    kp = kernel.kps[0]
    gvt = kp.processed[5].key.ts
    kp.fossil_collect(gvt, kernel)
    assert kp.processed[0].key.ts >= gvt
