"""RouterLP on mesh boundaries: degree-2 corners and degree-3 edges.

The torus harness in ``test_hotpotato_router.py`` only ever exercises
degree-4 routers; on a mesh the boundary nodes have missing links, and
every handler must treat a missing direction as permanently claimed —
never seed it, never route onto it, never count it in utilisation.
"""

import pytest

from repro.core.event import Event
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.packet import Priority
from repro.hotpotato.policy import BuschHotPotatoPolicy
from repro.hotpotato.router import ARRIVE, HEARTBEAT, INIT, INJECT, ROUTE, RouterLP
from repro.net import Direction, MeshTopology
from repro.rng.streams import ReversibleStream

N_, E_, S_, W_ = (
    int(Direction.NORTH),
    int(Direction.EAST),
    int(Direction.SOUTH),
    int(Direction.WEST),
)


def make_lp(node, n=3, **cfg_kwargs):
    cfg = HotPotatoConfig(n=n, torus=False, **cfg_kwargs)
    topo = MeshTopology(n)
    sends = []
    lp = RouterLP(node, cfg, topo, BuschHotPotatoPolicy(), is_injector=True)
    lp.bind(ReversibleStream(11, node), lambda src, ev: sends.append(ev))
    return lp, sends, topo


def state_of(lp):
    return (
        tuple(lp.links),
        lp.head_gen_step,
        lp.stats.signature(),
        lp.rng.checkpoint(),
        lp.send_seq,
    )


def execute(lp, kind, data, ts=1.0):
    from repro.vt.time import EventKey

    ev = Event(EventKey(ts, lp.id, 999), lp.id, kind, data)
    ev.prev_send_seq = lp.send_seq
    before = lp.rng.count
    lp._now = ts
    lp.forward(ev)
    ev.rng_draws = lp.rng.count - before
    return ev


def undo(lp, ev):
    lp.reverse(ev)
    lp.rng.reverse(ev.rng_draws)
    lp.send_seq = ev.prev_send_seq


def packet_data(step, dest, priority=Priority.ACTIVE, inject_step=0, jitter=0.25, distance=1, src=0):
    return {
        "step": step,
        "dest": dest,
        "priority": int(priority),
        "inject_step": inject_step,
        "jitter": jitter,
        "distance": distance,
        "src": src,
    }


def test_corner_exists_mask_matches_degree():
    lp, _, topo = make_lp(0)  # top-left corner of 3x3: E and S only
    assert lp.exists == (False, True, True, False)
    assert topo.degree(0) == 2
    edge_lp, _, _ = make_lp(1)  # top edge: E, S, W
    assert edge_lp.exists == (False, True, True, True)


def test_corner_free_mask_never_reports_missing_links():
    lp, _, _ = make_lp(0)
    free = lp._free_mask(step=0)
    assert free == (False, True, True, False)
    lp.links[E_] = 0  # claimed this step
    assert lp._free_mask(0) == (False, False, True, False)


def test_init_seeds_only_existing_links():
    lp, sends, topo = make_lp(0, initial_fill=1.0)
    execute(lp, INIT, {}, ts=0.0)
    # Full fill on a degree-2 corner seeds exactly two packets (plus the
    # self-scheduled first INJECT), and they go to the real neighbors.
    arrives = [ev for ev in sends if ev.kind == ARRIVE]
    assert len(arrives) == 2
    dsts = sorted(ev.dst for ev in arrives)
    assert dsts == sorted(
        topo.neighbor(0, d) for d in (Direction.EAST, Direction.SOUTH)
    )


def test_corner_route_only_good_dir_busy_deflects_onto_real_link():
    # Corner 0 → dest 2 (same row): EAST is the only good direction.
    # With EAST claimed, the bufferless router must deflect — and the
    # only legal output is SOUTH, never a missing N/W link.
    lp, sends, topo = make_lp(0)
    assert topo.route_info(0, 2)[0] == (Direction.EAST,)
    lp.links[E_] = 4  # claimed at this step
    ev = execute(lp, ROUTE, packet_data(step=4, dest=2), ts=4.6)
    (arrive,) = sends
    assert arrive.dst == topo.neighbor(0, Direction.SOUTH)
    assert lp.stats.deflections == 1
    assert lp.stats.overflow_routes == 0
    undo(lp, ev)
    assert lp.stats.signature() == RouterLP(
        0, lp.cfg, topo, BuschHotPotatoPolicy(), is_injector=True
    ).stats.signature()


def test_corner_route_reverse_restores_exactly():
    lp, sends, topo = make_lp(0)
    before = state_of(lp)
    ev = execute(lp, ROUTE, packet_data(step=2, dest=8), ts=2.6)
    assert sends  # routed somewhere real
    assert sends[0].dst in (topo.neighbor(0, Direction.EAST), topo.neighbor(0, Direction.SOUTH))
    undo(lp, ev)
    assert state_of(lp) == before


def test_corner_inject_blocked_when_both_links_claimed():
    lp, sends, _ = make_lp(0)
    lp.links[E_] = 3
    lp.links[S_] = 3
    before = state_of(lp)
    ev = execute(lp, INJECT, {"step": 3}, ts=3.9)
    assert lp.stats.inject_blocked == 1
    assert lp.stats.injected == 0
    # Only the self-rescheduled INJECT went out, no ARRIVE.
    assert [e.kind for e in sends] == [INJECT]
    undo(lp, ev)
    assert state_of(lp) == before


def test_corner_inject_uses_existing_link():
    lp, sends, topo = make_lp(0)
    ev = execute(lp, INJECT, {"step": 3}, ts=3.9)
    assert lp.stats.injected == 1
    arrives = [e for e in sends if e.kind == ARRIVE]
    assert len(arrives) == 1
    assert arrives[0].dst in (
        topo.neighbor(0, Direction.EAST),
        topo.neighbor(0, Direction.SOUTH),
    )
    undo(lp, ev)
    assert lp.stats.injected == 0


def test_heartbeat_samples_degree_not_four():
    lp, _, _ = make_lp(0, heartbeat=True)
    lp.links[E_] = 6
    ev = execute(lp, HEARTBEAT, {"step": 6}, ts=6.95)
    assert lp.stats.util_samples == 2  # degree-2 corner, not 4
    assert lp.stats.util_claimed == 1
    undo(lp, ev)
    assert lp.stats.util_samples == 0 and lp.stats.util_claimed == 0


def test_edge_node_routes_never_use_missing_north():
    # Top-edge node 1 (degree 3, missing NORTH): hammer ROUTE with many
    # destinations and claimed-link patterns; no ARRIVE may target a
    # NORTH neighbor (there is none — send would hit the assert).
    lp, sends, topo = make_lp(1)
    for dest in (0, 2, 3, 5, 6, 7, 8):
        for claimed in ((), (E_,), (W_,), (E_, W_), (S_,)):
            sends.clear()
            lp.links = [-1, -1, -1, -1]
            for d in claimed:
                lp.links[d] = 9
            execute(lp, ROUTE, packet_data(step=9, dest=dest), ts=9.6)
            (arrive,) = sends
            legal = {
                topo.neighbor(1, d)
                for d in (Direction.EAST, Direction.SOUTH, Direction.WEST)
            }
            assert arrive.dst in legal
    assert lp.stats.overflow_routes == 0
