"""Tests for lazy cancellation (message reuse after rollback)."""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import run_sequential
from repro.core.optimistic import run_optimistic
from repro.errors import ConfigurationError
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.model import HotPotatoModel
from repro.models.phold import PholdConfig, PholdModel
from tests.kernel_models import ChattyModel

END = 30.0
PHOLD = PholdConfig(n_lps=48, jobs_per_lp=3, remote_fraction=0.8)


def opt(model, cancellation, **kw):
    kw.setdefault("n_pes", 4)
    kw.setdefault("n_kps", 8)
    kw.setdefault("batch_size", 64)
    kw.setdefault("mapping", "striped")
    return run_optimistic(
        model, EngineConfig(end_time=END, cancellation=cancellation, **kw)
    )


def test_config_validates_cancellation():
    with pytest.raises(ConfigurationError):
        EngineConfig(end_time=1.0, cancellation="eager")


def test_lazy_matches_oracle_phold():
    oracle = run_sequential(PholdModel(PHOLD), END).model_stats
    result = opt(PholdModel(PHOLD), "lazy")
    assert result.model_stats == oracle
    assert result.run.lazy_reused > 0


def test_lazy_matches_oracle_hotpotato():
    cfg = HotPotatoConfig(n=6, duration=END, injector_fraction=1.0)
    oracle = run_sequential(HotPotatoModel(cfg), END).model_stats
    result = opt(HotPotatoModel(cfg), "lazy", n_kps=12)
    assert result.model_stats == oracle


def test_lazy_reduces_cancellations():
    aggressive = opt(PholdModel(PHOLD), "aggressive")
    lazy = opt(PholdModel(PHOLD), "lazy")
    assert aggressive.run.lazy_reused == 0
    a_cancelled = (
        aggressive.run.cancelled_direct + aggressive.run.cancelled_via_rollback
    )
    l_cancelled = lazy.run.cancelled_direct + lazy.run.cancelled_via_rollback
    assert l_cancelled < a_cancelled
    assert lazy.run.lazy_reused > 0


def test_lazy_reduces_secondary_rollbacks():
    # Reused messages spare their (already processed) receivers: fewer
    # events get rolled back in total.
    aggressive = opt(PholdModel(PHOLD), "aggressive")
    lazy = opt(PholdModel(PHOLD), "lazy")
    assert lazy.run.events_rolled_back < aggressive.run.events_rolled_back


def test_lazy_identical_on_deterministic_chatty_model():
    oracle = run_sequential(ChattyModel(4, pokers={2: 0, 3: 1}), END).model_stats
    for canc in ("aggressive", "lazy"):
        result = opt(
            ChattyModel(4, pokers={2: 0, 3: 1}),
            canc,
            n_pes=2,
            n_kps=4,
            batch_size=1000,
        )
        assert result.model_stats == oracle


def test_lazy_with_window_and_copy_strategy():
    cfg = HotPotatoConfig(n=4, duration=END, injector_fraction=1.0)
    oracle = run_sequential(HotPotatoModel(cfg), END).model_stats
    result = opt(
        HotPotatoModel(cfg),
        "lazy",
        n_kps=8,
        window=1.0,
        batch_size=1 << 20,
        rollback="copy",
    )
    assert result.model_stats == oracle


def test_lazy_with_mailbox_transport():
    oracle = run_sequential(PholdModel(PHOLD), END).model_stats
    result = opt(PholdModel(PHOLD), "lazy", transport="mailbox")
    assert result.model_stats == oracle


def test_lazy_mailbox_random_mapping_hotpotato_regression():
    # Regression: lazy cancellation exposes downstream LPs to parked
    # (zombie) messages until their sender re-executes, so a router can
    # transiently see more packets than it has links.  The model must ride
    # it out; every overflow is rolled back, committed stats show none,
    # and the final results still match the oracle exactly.
    cfg = HotPotatoConfig(n=4, duration=20.0, injector_fraction=1.0)
    oracle = run_sequential(HotPotatoModel(cfg), 20.0).model_stats
    result = run_optimistic(
        HotPotatoModel(cfg),
        EngineConfig(
            end_time=20.0,
            n_pes=3,
            n_kps=3,
            batch_size=64,
            mapping="random",
            transport="mailbox",
            cancellation="lazy",
        ),
    )
    assert result.model_stats == oracle
    assert result.model_stats["overflow_routes"] == 0
    assert oracle["overflow_routes"] == 0


def test_internal_consistency_holds_under_lazy():
    result = opt(PholdModel(PHOLD), "lazy")
    run = result.run
    assert run.committed == run.processed - run.events_rolled_back
