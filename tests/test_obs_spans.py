"""Tests for the span tracer: ring semantics, engine hooks, zero overhead."""

import pytest

from repro.core.config import EngineConfig
from repro.core.conservative import ConservativeConfig, run_conservative
from repro.core.engine import SequentialEngine, run_sequential
from repro.core.optimistic import TimeWarpKernel, run_optimistic
from repro.models.phold import PholdConfig, PholdModel
from repro.obs.capture import RunCapture
from repro.obs.recorder import SCHEMA_VERSION, load_recording
from repro.obs.spans import PHASES, Span, SpanTracer

END = 15.0
PHOLD = PholdConfig(n_lps=16, jobs_per_lp=2, remote_fraction=0.7)


# ----------------------------------------------------------------------
# SpanTracer unit behaviour.
# ----------------------------------------------------------------------
def test_capacity_and_interval_validation():
    with pytest.raises(ValueError):
        SpanTracer(capacity=0)
    with pytest.raises(ValueError):
        SpanTracer(interval=0)


def test_record_and_breakdown():
    tracer = SpanTracer(clock=lambda: 0.0)  # epoch pinned at 0.0
    tracer.record("exec", 1.0, 4.0, pe=1, n=10)
    tracer.record("rollback", 4.0, 5.0, pe=1, kp=3, lp=7, n=2)
    tracer.record("exec", 5.0, 7.0, pe=0, n=5)
    assert tracer.epoch == 0.0
    assert len(tracer) == 3
    spans = tracer.spans()
    assert [s.phase for s in spans] == ["exec", "rollback", "exec"]
    assert spans[0].dt == 3.0 and spans[0].pe == 1 and spans[0].n == 10
    assert spans[1].kp == 3 and spans[1].lp == 7
    breakdown = tracer.phase_breakdown()
    assert breakdown["exec"][0] == 2
    assert breakdown["exec"][1] == pytest.approx(5.0)
    # Shares over recorded time only, and they sum to 1.
    assert sum(share for _c, _t, share in breakdown.values()) == pytest.approx(1.0)
    assert tracer.busy_by_pe() == {0: pytest.approx(2.0), 1: pytest.approx(3.0)}


def test_ring_wraps_but_totals_survive():
    tracer = SpanTracer(capacity=4, clock=lambda: 0.0)
    for i in range(10):
        tracer.record("gvt", float(i), float(i) + 0.5)
    assert len(tracer) == 4
    assert tracer.dropped == 6
    # The window holds the most recent spans, oldest first.
    assert [s.t0 for s in tracer.spans()] == [6.0, 7.0, 8.0, 9.0]
    # Exact totals keep counting across eviction.
    count, seconds = tracer.totals["gvt"]
    assert count == 10
    assert seconds == pytest.approx(5.0)


def test_span_round_trips_through_dict():
    s = Span(phase="rollback", t0=1.5, dt=0.25, pe=2, kp=9, lp=31, n=7)
    assert Span.from_dict(s.as_dict()) == s
    assert set(PHASES) >= {"exec", "rollback", "antimsg", "gvt"}


# ----------------------------------------------------------------------
# Engine hooks: attached behaviour and the zero-overhead contract.
# ----------------------------------------------------------------------
def test_optimistic_fast_paths_stay_installed_with_spans():
    kernel = TimeWarpKernel(
        PholdModel(PHOLD),
        EngineConfig(end_time=END, n_pes=2, n_kps=4, batch_size=32,
                     mapping="striped"),
    )
    tracer = SpanTracer()
    kernel.attach_spans(tracer)
    kernel.run()
    # Spans record at phase boundaries, never per event: the fused
    # execute closure must survive attachment (only a Tracer evicts it).
    assert kernel.execute.__name__ == "fast_execute"
    assert len(tracer) > 0
    assert tracer.totals["exec"][0] > 0
    assert tracer.totals["gvt"][0] > 0


def test_detached_engines_record_exactly_nothing():
    # No tracer object exists at all when detached — the engines carry
    # a None attribute and consult it with one branch per boundary.
    engine = SequentialEngine(PholdModel(PHOLD), END)
    assert engine.spans is None
    kernel = TimeWarpKernel(
        PholdModel(PHOLD),
        EngineConfig(end_time=END, n_pes=2, n_kps=4, batch_size=32,
                     mapping="striped"),
    )
    assert kernel.spans is None
    kernel.run()
    assert kernel.spans is None


def test_spans_do_not_perturb_results():
    cfg = EngineConfig(end_time=END, n_pes=4, n_kps=8, batch_size=64,
                       mapping="striped")
    plain = run_optimistic(PholdModel(PHOLD), cfg)
    traced = run_optimistic(PholdModel(PHOLD), cfg, spans=SpanTracer())
    assert traced.model_stats == plain.model_stats
    assert traced.run.committed == plain.run.committed
    assert traced.run.events_rolled_back == plain.run.events_rolled_back


def test_all_three_engines_emit_exec_spans():
    seq = SpanTracer()
    run_sequential(PholdModel(PHOLD), END, spans=seq)
    cons = SpanTracer()
    run_conservative(
        PholdModel(PHOLD), ConservativeConfig(end_time=END, n_pes=4),
        spans=cons,
    )
    opt = SpanTracer()
    run_optimistic(
        PholdModel(PHOLD),
        EngineConfig(end_time=END, n_pes=4, n_kps=8, batch_size=64,
                     mapping="striped"),
        spans=opt,
    )
    for tracer in (seq, cons, opt):
        assert tracer.totals["exec"][0] > 0
        assert tracer.totals["exec"][1] > 0.0
    # Rollback attribution only exists on the optimistic engine.
    assert opt.totals["rollback"][0] > 0
    assert seq.totals["rollback"][0] == 0
    assert cons.totals["rollback"][0] == 0
    # Spans carry PE attribution on the parallel engines.
    assert set(opt.busy_by_pe()) == {0, 1, 2, 3}


def test_sequential_interval_paces_exec_spans():
    tracer = SpanTracer(interval=64)
    result = run_sequential(PholdModel(PHOLD), END, spans=tracer)
    count = tracer.totals["exec"][0]
    total_n = sum(s.n for s in tracer.spans() if s.phase == "exec")
    assert total_n == result.run.committed
    # One span per full interval plus at most one tail flush.
    assert count == result.run.committed // 64 + (
        1 if result.run.committed % 64 else 0
    )


# ----------------------------------------------------------------------
# Streaming into the flight recorder (schema 3).
# ----------------------------------------------------------------------
def test_spans_stream_through_capture_and_load(tmp_path):
    out = tmp_path / "run.jsonl"
    capture = RunCapture(
        metrics_out=out, spans_out=out, meta={"engine": "optimistic"}
    )
    result = run_optimistic(
        PholdModel(PHOLD),
        EngineConfig(end_time=END, n_pes=4, n_kps=8, batch_size=64,
                     mapping="striped"),
        metrics=capture.metrics,
        spans=capture.spans,
    )
    capture.finalize(result)
    rec = load_recording(out)
    assert rec.header["schema"] == SCHEMA_VERSION
    assert len(rec.spans) == len(capture.spans)
    breakdown = rec.span_breakdown()
    assert breakdown["exec"][0] == capture.spans.totals["exec"][0]
    assert rec.span_busy_by_pe().keys() == capture.spans.busy_by_pe().keys()
    # The recording's metric stream rides in the same file untouched.
    assert rec.metrics


def test_capture_dedups_spans_sink(tmp_path):
    out = tmp_path / "both.jsonl"
    capture = RunCapture(metrics_out=out, trace_out=out, spans_out=out, meta={})
    assert len(capture._sinks) == 1
    capture.finalize(None)
    separate = RunCapture(
        metrics_out=tmp_path / "m.jsonl", spans_out=tmp_path / "s.jsonl", meta={}
    )
    assert len(separate._sinks) == 2
    separate.finalize(None)
