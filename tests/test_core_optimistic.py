"""Tests for the Time Warp kernel: rollback mechanics and determinism."""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import run_sequential
from repro.core.optimistic import TimeWarpKernel, run_optimistic
from repro.errors import ConfigurationError
from repro.models.phold import PholdConfig, PholdModel
from tests.kernel_models import ChattyModel

END = 30.0


def opt(model, **kw):
    kw.setdefault("end_time", END)
    kw.setdefault("mapping", "striped")
    return run_optimistic(model, EngineConfig(**kw))


# ----------------------------------------------------------------------
# Straggler / rollback mechanics on the deterministic Chatty model.
# ----------------------------------------------------------------------
def chatty():
    # LP 1 (second PE, scheduled later in the round) pokes LP 0 with a
    # small delay: the poke lands in PE 0's already-processed past.
    return ChattyModel(n_lps=2, pokers={1: 0})


def test_straggler_produces_rollback():
    result = opt(chatty(), n_pes=2, n_kps=2, batch_size=1000)
    assert result.run.stragglers > 0
    assert result.run.events_rolled_back > 0


def test_rollback_preserves_results():
    oracle = run_sequential(chatty(), END)
    result = opt(chatty(), n_pes=2, n_kps=2, batch_size=1000)
    assert result.model_stats == oracle.model_stats
    # Every tick 1..29 per LP, every poke received.
    assert result.model_stats["ticks"] == (29, 29)
    assert result.model_stats["pokes"] == (29, 0)


def test_single_pe_never_rolls_back():
    result = opt(chatty(), n_pes=1, n_kps=1, batch_size=7)
    assert result.run.events_rolled_back == 0
    assert result.run.stragglers == 0


def test_committed_equals_processed_minus_rolled_back():
    result = opt(chatty(), n_pes=2, n_kps=2, batch_size=1000)
    run = result.run
    assert run.committed == run.processed - run.events_rolled_back
    assert run.fossil_collected == run.committed


def test_false_rollbacks_counted_with_shared_kp():
    # 4 LPs, 2 KPs: LP 1 shares KP 0 with the poke target LP 0, so its
    # innocent events get rolled back too.
    model = ChattyModel(n_lps=4, pokers={2: 0})
    shared = opt(model, n_pes=2, n_kps=2, batch_size=1000)
    assert shared.run.false_rollback_events > 0
    # One KP per LP: rollbacks touch only the target LP.
    model = ChattyModel(n_lps=4, pokers={2: 0})
    isolated = opt(model, n_pes=2, n_kps=4, batch_size=1000)
    assert isolated.run.false_rollback_events == 0


def test_more_kps_reduce_rolled_back_events():
    rolled = {}
    for n_kps in (2, 4):
        model = ChattyModel(n_lps=4, pokers={2: 0, 3: 1})
        rolled[n_kps] = opt(
            model, n_pes=2, n_kps=n_kps, batch_size=1000
        ).run.events_rolled_back
    assert rolled[4] <= rolled[2]


def test_cancellations_happen_when_rolled_back_events_sent():
    # The poked LP 0 also pokes LP 1: its rolled-back ticks had sent events
    # that must be cancelled.
    model = ChattyModel(n_lps=2, pokers={1: 0, 0: 1})
    result = opt(model, n_pes=2, n_kps=2, batch_size=1000)
    run = result.run
    assert run.events_rolled_back > 0
    assert run.cancelled_direct + run.cancelled_via_rollback > 0
    oracle = run_sequential(ChattyModel(n_lps=2, pokers={1: 0, 0: 1}), END)
    assert result.model_stats == oracle.model_stats


# ----------------------------------------------------------------------
# Determinism matrix on PHOLD (DESIGN.md invariant 2).
# ----------------------------------------------------------------------
PHOLD = PholdConfig(n_lps=32, jobs_per_lp=3, remote_fraction=0.7)


@pytest.fixture(scope="module")
def phold_oracle():
    return run_sequential(PholdModel(PHOLD), END).model_stats


@pytest.mark.parametrize(
    "kw",
    [
        dict(n_pes=1, n_kps=1, batch_size=16),
        dict(n_pes=2, n_kps=4, batch_size=4),
        dict(n_pes=4, n_kps=8, batch_size=64),
        dict(n_pes=4, n_kps=16, batch_size=16, rollback="copy"),
        dict(n_pes=4, n_kps=8, batch_size=16, mapping="random"),
        dict(n_pes=4, n_kps=8, batch_size=16, transport="mailbox"),
        dict(n_pes=4, n_kps=8, batch_size=16, transport="mailbox", gvt="mattern"),
        dict(n_pes=4, n_kps=8, batch_size=16, gvt="mattern"),
        dict(n_pes=3, n_kps=9, batch_size=5, gvt_interval=3),
        dict(n_pes=4, n_kps=8, window=2.0, batch_size=1 << 20),
        dict(n_pes=2, n_kps=4, window=0.5, batch_size=1 << 20),
    ],
    ids=lambda kw: "-".join(f"{k}={v}" for k, v in kw.items()),
)
def test_every_configuration_matches_oracle(phold_oracle, kw):
    result = opt(PholdModel(PHOLD), **kw)
    assert result.model_stats == phold_oracle
    run = result.run
    assert run.committed == run.processed - run.events_rolled_back


def test_seed_changes_results():
    a = opt(PholdModel(PHOLD), n_pes=2, n_kps=4, seed=1)
    b = opt(PholdModel(PHOLD), n_pes=2, n_kps=4, seed=2)
    assert a.model_stats != b.model_stats


def test_same_config_repeatable():
    a = opt(PholdModel(PHOLD), n_pes=4, n_kps=8, batch_size=32)
    b = opt(PholdModel(PHOLD), n_pes=4, n_kps=8, batch_size=32)
    assert a.model_stats == b.model_stats
    assert a.run.events_rolled_back == b.run.events_rolled_back


# ----------------------------------------------------------------------
# Construction validation.
# ----------------------------------------------------------------------
def test_empty_model_rejected():
    class Empty(PholdModel):
        def build(self):
            return []

    with pytest.raises(ConfigurationError):
        TimeWarpKernel(Empty(PHOLD), EngineConfig(end_time=1.0))


def test_result_metadata():
    result = opt(PholdModel(PHOLD), n_pes=2, n_kps=4)
    assert result.run.engine == "optimistic"
    assert result.run.n_pes == 2
    assert result.run.n_kps == 4
    assert len(result.run.per_pe_busy_seconds) == 2
    assert result.run.event_rate > 0
    assert len(result.lps) == PHOLD.n_lps
