"""Unit tests for reversible per-LP RNG streams."""

import math

import pytest

from repro.rng.streams import ReversibleStream, derive_seed


def make(seed=123, sid=0):
    return ReversibleStream(derive_seed(seed, sid), sid)


def test_deterministic_given_seed():
    a, b = make(), make()
    assert [a.unif() for _ in range(50)] == [b.unif() for _ in range(50)]


def test_different_streams_differ():
    a = make(sid=0)
    b = make(sid=1)
    assert [a.unif() for _ in range(10)] != [b.unif() for _ in range(10)]


def test_reverse_single_draw():
    s = make()
    before = s.checkpoint()
    first = s.unif()
    s.reverse()
    assert s.checkpoint() == before
    assert s.unif() == first  # replays identically


def test_reverse_many():
    s = make()
    draws = [s.unif() for _ in range(20)]
    s.reverse(20)
    assert s.count == 0
    assert [s.unif() for _ in range(20)] == draws


def test_reverse_too_many_raises():
    s = make()
    s.unif()
    with pytest.raises(ValueError):
        s.reverse(2)


def test_reverse_negative_raises():
    s = make()
    with pytest.raises(ValueError):
        s.reverse(-1)


def test_count_tracks_all_distributions():
    s = make()
    s.unif()
    s.integer(0, 9)
    s.exponential(2.0)
    s.bernoulli(0.5)
    assert s.count == 4  # every draw consumes exactly one uniform


def test_integer_bounds_inclusive():
    s = make()
    values = {s.integer(3, 5) for _ in range(200)}
    assert values == {3, 4, 5}


def test_integer_single_value():
    s = make()
    assert s.integer(7, 7) == 7


def test_integer_empty_range_raises():
    s = make()
    with pytest.raises(ValueError):
        s.integer(5, 4)


def test_exponential_positive_and_mean_plausible():
    s = make()
    n = 4000
    xs = [s.exponential(3.0) for _ in range(n)]
    assert all(x > 0 for x in xs)
    mean = sum(xs) / n
    assert math.isclose(mean, 3.0, rel_tol=0.15)


def test_exponential_requires_positive_mean():
    s = make()
    with pytest.raises(ValueError):
        s.exponential(0.0)


def test_bernoulli_extremes():
    s = make()
    assert not any(s.bernoulli(0.0) for _ in range(100))
    assert all(s.bernoulli(1.0) for _ in range(100))


def test_checkpoint_restore():
    s = make()
    s.unif()
    ckpt = s.checkpoint()
    later = [s.unif() for _ in range(5)]
    s.restore(ckpt)
    assert [s.unif() for _ in range(5)] == later


def test_seek_forward_and_backward():
    s = make()
    draws = [s.unif() for _ in range(10)]
    s.seek(3)
    assert s.count == 3
    assert s.unif() == draws[3]
    s.seek(9)  # forward jump from count 4
    assert s.unif() == draws[9]
    s.seek(0)  # all the way back
    assert s.unif() == draws[0]


def test_seek_negative_raises():
    s = make()
    with pytest.raises(ValueError):
        s.seek(-1)


def test_derive_seed_spreads_ids():
    seeds = {derive_seed(42, i) for i in range(10000)}
    assert len(seeds) == 10000
