"""Unit tests for the Event container."""

from repro.core.event import Event
from repro.vt.time import EventKey


def make(ts=1.0, origin=0, seq=0, dst=1, kind="k"):
    return Event(EventKey(ts, origin, seq), dst, kind, {"x": 1})


def test_accessors():
    ev = make(ts=2.5, origin=3, seq=7)
    assert ev.ts == 2.5
    assert ev.origin == 3
    assert ev.key.seq == 7
    assert ev.dst == 1
    assert ev.kind == "k"
    assert ev.data == {"x": 1}


def test_default_data_is_fresh_dict():
    a = Event(EventKey(1.0, 0, 0), 0, "k")
    b = Event(EventKey(1.0, 0, 1), 0, "k")
    a.data["y"] = 1
    assert "y" not in b.data


def test_initial_flags():
    ev = make()
    assert not ev.processed
    assert not ev.cancelled
    assert not ev.in_pending
    assert ev.sent == []
    assert ev.rng_draws == 0
    assert ev.snapshot is None


def test_reset_journal_clears_kernel_state_only():
    ev = make()
    ev.sent.append(make(seq=1))
    ev.rng_draws = 5
    ev.snapshot = object()
    ev.saved["keep?"] = 1
    ev.reset_journal()
    assert ev.sent == []
    assert ev.rng_draws == 0
    assert ev.snapshot is None
    # saved belongs to the model; forward handlers overwrite it themselves.
    assert ev.saved == {"keep?": 1}


def test_repr_shows_flags():
    ev = make()
    assert "--" in repr(ev)
    ev.processed = True
    assert "P-" in repr(ev)
