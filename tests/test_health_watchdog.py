"""Liveness watchdog: detectors trip on sick populations, never on
healthy ones, and an attached watchdog does not perturb the science.

The contract (docs/HEALTH.md): synthetic stalled-GVT and livelocked
packet populations must trip their detectors within the configured
deadline; a healthy golden-seed run must produce **zero** health events
at the default thresholds; and attaching the watchdog must leave the
committed sequence bit-identical.
"""

import pytest

from repro.core.config import EngineConfig
from repro.core.conservative import ConservativeConfig, ConservativeKernel
from repro.core.engine import SequentialEngine
from repro.core.optimistic import TimeWarpKernel
from repro.core.trace import Tracer
from repro.errors import ConfigurationError, HealthIntervention
from repro.health import DEFAULT_LADDER, HealthConfig, HealthEvent, Watchdog
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.model import HotPotatoModel

N = 4
DURATION = 12.0
SEED = 7


def _model() -> HotPotatoModel:
    return HotPotatoModel(
        HotPotatoConfig(n=N, duration=DURATION, injector_fraction=1.0)
    )


def _engine(kind: str):
    if kind == "seq":
        return SequentialEngine(_model(), DURATION, seed=SEED)
    if kind == "cons":
        model = _model()
        return ConservativeKernel(
            model,
            ConservativeConfig(
                end_time=DURATION, n_pes=2, seed=SEED,
                lookahead=model.lookahead,
            ),
        )
    return TimeWarpKernel(
        _model(),
        EngineConfig(end_time=DURATION, n_pes=2, n_kps=8, batch_size=16,
                     seed=SEED),
    )


class _FakeEvent:
    def __init__(self, data):
        self.data = data


class _FakeEngine:
    """Just enough surface for bind() + boundary_sequential()."""

    kind = "sequential"

    def __init__(self, pending=()):
        self.model = object()
        self.pending = list(pending)


class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


# ----------------------------------------------------------------------
# Healthy runs: zero events, identical science.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", ["seq", "cons", "opt"])
def test_healthy_run_zero_events_at_defaults(kind):
    wd = Watchdog()
    engine = _engine(kind).attach_health(wd)
    engine.run()
    assert wd.boundaries > 0, "watchdog was never consulted"
    assert wd.events == []
    assert wd.rung == 0


@pytest.mark.parametrize("kind", ["seq", "cons", "opt"])
def test_attached_watchdog_does_not_change_committed_sequence(kind):
    plain_tracer = Tracer()
    _engine(kind).attach_tracer(plain_tracer).run()
    watched_tracer = Tracer()
    _engine(kind).attach_tracer(watched_tracer).attach_health(
        Watchdog()
    ).run()
    assert (
        watched_tracer.committed_sequence()
        == plain_tracer.committed_sequence()
    )


def test_livelock_bound_resolves_from_topology_diameter():
    wd = Watchdog()
    engine = _engine("seq").attach_health(wd)
    cfg = wd.cfg
    want = cfg.livelock_factor * engine.model.topo.diameter() + cfg.livelock_slack
    assert wd.livelock_bound == want


# ----------------------------------------------------------------------
# Synthetic sick populations.
# ----------------------------------------------------------------------
def test_stall_trips_within_boundary_deadline():
    """A non-advancing position trips gvt_stall at exactly the deadline."""
    wd = Watchdog(
        HealthConfig(stall_boundaries=16, stall_wall_seconds=0.0,
                     ladder=("abort",)),
        clock=_FakeClock(),
    )
    engine = _FakeEngine()
    wd.bind(engine)
    wd.boundary_sequential(engine, 1.0)  # progress
    with pytest.raises(HealthIntervention) as exc_info:
        for _ in range(16):
            wd.boundary_sequential(engine, 1.0)  # stuck
    event = exc_info.value.event
    assert exc_info.value.action == "abort"
    assert event.detector == "gvt_stall"
    assert event.detail["stuck_boundaries"] == 16
    # Tripped at the deadline, not later.
    assert wd.boundaries == 17


def test_stall_trips_on_wall_deadline():
    clock = _FakeClock()
    wd = Watchdog(
        HealthConfig(stall_wall_seconds=5.0, stall_boundaries=0,
                     ladder=("abort",)),
        clock=clock,
    )
    engine = _FakeEngine()
    wd.bind(engine)
    wd.boundary_sequential(engine, 1.0)
    clock.now = 4.9
    wd.boundary_sequential(engine, 1.0)  # under the deadline: no trip
    assert wd.events == []
    clock.now = 5.1
    with pytest.raises(HealthIntervention) as exc_info:
        wd.boundary_sequential(engine, 1.0)
    assert exc_info.value.event.detector == "gvt_stall"


def test_progress_rearms_the_stall_deadline():
    wd = Watchdog(
        HealthConfig(stall_boundaries=8, stall_wall_seconds=0.0,
                     ladder=("abort",)),
        clock=_FakeClock(),
    )
    engine = _FakeEngine()
    wd.bind(engine)
    for step in range(64):  # always advancing: never trips
        wd.boundary_sequential(engine, float(step))
    assert wd.events == []


def test_livelock_trips_on_overage_packet_population():
    """A pending packet older than the bound trips within one scan."""
    wd = Watchdog(
        HealthConfig(livelock_bound=10.0, livelock_check_every=1,
                     ladder=("abort",)),
    )
    old = _FakeEvent({"inject_step": 0})
    fresh = _FakeEvent({"inject_step": 19})
    engine = _FakeEngine(pending=[fresh, old])
    wd.bind(engine)
    with pytest.raises(HealthIntervention) as exc_info:
        wd.boundary_sequential(engine, 20.0)  # old packet age = 20 > 10
    event = exc_info.value.event
    assert event.detector == "livelock"
    assert event.detail["oldest_packet_age"] == 20.0
    assert event.detail["bound"] == 10.0


def test_livelock_scan_is_paced():
    wd = Watchdog(
        HealthConfig(livelock_bound=10.0, livelock_check_every=8,
                     ladder=("abort",)),
    )
    engine = _FakeEngine(pending=[_FakeEvent({"inject_step": 0})])
    wd.bind(engine)
    for _ in range(7):  # boundaries 1..7: no scan yet
        wd.boundary_sequential(engine, 100.0)
    assert wd.events == []
    with pytest.raises(HealthIntervention):
        wd.boundary_sequential(engine, 100.0)  # boundary 8: scan fires


def test_livelock_ignores_models_without_packet_payloads():
    wd = Watchdog(
        HealthConfig(livelock_bound=1.0, livelock_check_every=1,
                     ladder=("abort",)),
    )
    engine = _FakeEngine(pending=[_FakeEvent(None), _FakeEvent((1, 2))])
    wd.bind(engine)
    wd.boundary_sequential(engine, 1000.0)
    assert wd.events == []


def test_cooldown_suppresses_repeat_trips():
    wd = Watchdog(
        HealthConfig(stall_boundaries=4, stall_wall_seconds=0.0,
                     cooldown_boundaries=32,
                     ladder=("throttle", "abort")),
        clock=_FakeClock(),
    )
    engine = _FakeEngine()
    wd.bind(engine)
    # No throttle on a sequential engine: the rung is skipped, but the
    # cooldown still applies after the first (abort-rung) trip attempt.
    with pytest.raises(HealthIntervention):
        for _ in range(64):
            wd.boundary_sequential(engine, 0.0)
    trips = len(wd.events)
    assert trips == 1  # cooldown swallowed the repeats


def test_throttle_rung_skipped_without_a_throttle():
    """Engines without an (adaptive) throttle escalate straight past it."""
    wd = Watchdog(
        HealthConfig(trip_at_boundary=1, ladder=("throttle", "abort")),
    )
    engine = _FakeEngine()
    wd.bind(engine)
    with pytest.raises(HealthIntervention) as exc_info:
        wd.boundary_sequential(engine, 0.0)
    assert exc_info.value.action == "abort"


def test_forced_trip_fires_once_at_requested_boundary():
    wd = Watchdog(HealthConfig(trip_at_boundary=3, ladder=("abort",)))
    engine = _FakeEngine()
    wd.bind(engine)
    wd.boundary_sequential(engine, 1.0)
    wd.boundary_sequential(engine, 2.0)
    with pytest.raises(HealthIntervention) as exc_info:
        wd.boundary_sequential(engine, 3.0)
    assert exc_info.value.event.detector == "forced"
    assert wd.boundaries == 3


def _adaptive_opt() -> TimeWarpKernel:
    return TimeWarpKernel(
        _model(),
        EngineConfig(end_time=DURATION, n_pes=2, n_kps=8, batch_size=16,
                     seed=SEED, adaptive=True),
    )


def test_throttle_action_tightens_optimistic_throttle_in_run():
    """A throttle-rung trip halves the optimism factor mid-run and the
    committed sequence still matches the unwatched baseline.  (Only an
    ``adaptive=True`` kernel has a throttle; others skip the rung.)"""
    baseline = Tracer()
    _adaptive_opt().attach_tracer(baseline).run()

    wd = Watchdog(
        HealthConfig(trip_at_boundary=2, ladder=("throttle", "abort")),
    )
    tracer = Tracer()
    engine = _adaptive_opt().attach_tracer(tracer).attach_health(wd)
    engine.run()
    assert len(wd.events) == 1
    assert wd.events[0].action == "throttle"
    # The watchdog applied its tightening step; the adaptive throttle is
    # free to raise the factor back afterwards, so assert the step
    # counter rather than the final factor.
    assert wd._throttle_steps == 1
    assert tracer.committed_sequence() == baseline.committed_sequence()


# ----------------------------------------------------------------------
# Rebinding semantics (restore / fallback attempts).
# ----------------------------------------------------------------------
def test_rebind_resets_progress_but_keeps_rung_and_events():
    wd = Watchdog(
        HealthConfig(stall_boundaries=4, stall_wall_seconds=0.0,
                     cooldown_boundaries=0, ladder=("restore", "abort")),
        clock=_FakeClock(),
    )
    engine = _FakeEngine()
    wd.bind(engine)
    wd.boundary_sequential(engine, 100.0)
    with pytest.raises(HealthIntervention) as exc_info:
        for _ in range(8):
            wd.boundary_sequential(engine, 100.0)
    assert exc_info.value.action == "restore"
    wd.rung += 1  # what run_with_recovery does when restore is impossible
    events_before = len(wd.events)

    # A fresh engine restarts from position 0: rebinding must not read
    # that as "no progress" against the sick run's position 100.
    engine2 = _FakeEngine()
    wd.bind(engine2)
    wd.boundary_sequential(engine2, 0.0)
    assert len(wd.events) == events_before
    assert wd.rung == 1  # escalation state survives the rebind


# ----------------------------------------------------------------------
# Config and event plumbing.
# ----------------------------------------------------------------------
def test_default_ladder_order():
    assert DEFAULT_LADDER == ("throttle", "restore", "fallback", "abort")
    assert HealthConfig().ladder == DEFAULT_LADDER


@pytest.mark.parametrize(
    "kwargs",
    [
        {"stall_wall_seconds": -1.0},
        {"thrash_fraction": 0.0},
        {"thrash_fraction": 1.5},
        {"ladder": ("throttle", "explode")},
    ],
)
def test_config_validation(kwargs):
    with pytest.raises(ConfigurationError):
        HealthConfig(**kwargs)


def test_health_event_to_dict_flattens_detail():
    event = HealthEvent(
        detector="gvt_stall", action="abort", engine="optimistic",
        boundary=12, position=3.5, wall=1.25,
        detail={"stuck_boundaries": 12},
    )
    doc = event.to_dict()
    assert doc["detector"] == "gvt_stall"
    assert doc["stuck_boundaries"] == 12
    assert "detail" not in doc
    assert "gvt_stall" in str(event)


def test_events_flow_through_health_sink_and_recording(tmp_path):
    """health lines round-trip: sink -> JSONL (schema 5) -> loader -> watch."""
    from repro.obs.capture import RunCapture
    from repro.obs.recorder import SCHEMA_VERSION, load_recording
    from repro.obs.watch import WatchState

    out = tmp_path / "run.jsonl"
    capture = RunCapture(health_out=out, meta={"engine": "opt"})
    wd = Watchdog(
        HealthConfig(trip_at_boundary=2, ladder=("throttle", "abort")),
        sink=capture.health_sink,
    )
    engine = _adaptive_opt().attach_health(wd)
    capture.attach(engine)
    result = engine.run()
    capture.finalize(result)

    rec = load_recording(out)
    assert rec.header["schema"] == SCHEMA_VERSION
    assert len(rec.health) == 1
    assert rec.health[0]["detector"] == "forced"
    assert rec.health[0]["action"] == "throttle"

    state = WatchState()
    for line in out.read_text().splitlines():
        state.feed_line(line)
    assert state.health_counts == {"forced": 1}
