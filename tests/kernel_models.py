"""Tiny deterministic models used by the kernel test suite."""

from __future__ import annotations

from repro.core.event import Event
from repro.core.lp import LogicalProcess, Model

TICK = "TICK"
POKE = "POKE"


class ChattyLP(LogicalProcess):
    """Ticks once per unit time; optionally pokes a peer with a small delay.

    A poke sent by a later-scheduled PE lands in the peer's past, forcing a
    straggler rollback — the deterministic way to exercise Time Warp paths.
    """

    def __init__(self, lp_id: int, peer: int | None, poke_delay: float = 0.1):
        super().__init__(lp_id)
        self.peer = peer
        self.poke_delay = poke_delay
        self.state = [0, 0]  # [ticks, pokes received]

    def on_init(self) -> None:
        self.send(1.0, self.id, TICK)

    def forward(self, event: Event) -> None:
        if event.kind == TICK:
            self.state[0] += 1
            self.send(self.now + 1.0, self.id, TICK)
            if self.peer is not None:
                self.send(self.now + self.poke_delay, self.peer, POKE)
        else:
            self.state[1] += 1

    def reverse(self, event: Event) -> None:
        if event.kind == TICK:
            self.state[0] -= 1
        else:
            self.state[1] -= 1


class ChattyModel(Model):
    """``n_lps`` tickers; LPs listed in ``pokers`` poke their target."""

    def __init__(self, n_lps: int = 2, pokers: dict[int, int] | None = None):
        self.n_lps = n_lps
        self.pokers = pokers or {}

    def build(self) -> list[LogicalProcess]:
        return [
            ChattyLP(i, self.pokers.get(i)) for i in range(self.n_lps)
        ]

    def collect_stats(self, lps):
        return {
            "ticks": tuple(lp.state[0] for lp in lps),
            "pokes": tuple(lp.state[1] for lp in lps),
        }
