"""Cross-process determinism: the multicore acceptance invariant.

The committed sequence of a ``parallelism="process"`` run must be
byte-identical to the sequential oracle's on golden seeds — at every
process count, under a model fault plan, and across a kill-at-checkpoint
resume from per-worker shards.  These are the tests CI's multicore smoke
step leans on (``.github/workflows``): if they pass, every event that
crossed a shared-memory ring was delivered, rolled back and committed
exactly as the one-process engine would have.

Runs are deliberately small (the test host may be single-core, so each
mp run time-slices ``procs`` workers over one CPU) but every one crosses
real process boundaries with real ring traffic.
"""

import shutil

import pytest

from repro.ckpt import Checkpointer, list_snapshots
from repro.core.config import EngineConfig
from repro.core.engine import run_sequential
from repro.core.optimistic import run_optimistic
from repro.core.trace import Tracer
from repro.faults import generate_plan
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.model import HotPotatoModel
from repro.net.torus import TorusTopology

N = 4
DURATION = 12.0
GOLDEN_SEEDS = (7, 0xB5EED)


def _cfg() -> HotPotatoConfig:
    return HotPotatoConfig(n=N, duration=DURATION, injector_fraction=1.0)


def _ecfg(procs: int, seed: int, **overrides) -> EngineConfig:
    kwargs = dict(
        end_time=DURATION,
        n_pes=4,
        n_kps=16,
        batch_size=16,
        seed=seed,
        parallelism="process",
        procs=procs,
        gvt_interval=8,
    )
    kwargs.update(overrides)
    return EngineConfig(**kwargs)


@pytest.mark.parametrize("procs", [2, 4])
@pytest.mark.parametrize("seed", GOLDEN_SEEDS)
def test_procs_committed_sequence_identical_to_sequential(procs, seed):
    seq_tr = Tracer()
    oracle = run_sequential(
        HotPotatoModel(_cfg()), DURATION, seed=seed, tracer=seq_tr
    )
    mp_tr = Tracer()
    mp = run_optimistic(
        HotPotatoModel(_cfg()), _ecfg(procs, seed), tracer=mp_tr
    )
    assert mp_tr.committed_sequence() == seq_tr.committed_sequence()
    assert mp.model_stats == oracle.model_stats
    assert mp.run.committed == oracle.run.committed
    assert mp.run.procs == procs
    # The run really crossed process boundaries: ring traffic happened.
    assert mp.run.ring_messages > 0
    assert mp.run.gvt_token_rounds > 0


def test_procs_identical_under_model_fault_plan():
    """Link failures and router crashes from a FaultPlan replay
    identically across the process boundary (fault schedules are pure
    functions of the step, and steps commit in the same order)."""
    plan = generate_plan(
        TorusTopology(N),
        duration=DURATION,
        link_fail_rate=0.1,
        heal_after=8,
        router_crash_rate=0.08,
        recover_after=6,
        seed=0xD00D,
    )
    assert plan.events, "plan unexpectedly empty — rates/seed drifted"
    seed = GOLDEN_SEEDS[0]

    seq_tr = Tracer()
    oracle = run_sequential(
        HotPotatoModel(_cfg(), fault_plan=plan), DURATION, seed=seed,
        tracer=seq_tr,
    )
    mp_tr = Tracer()
    mp = run_optimistic(
        HotPotatoModel(_cfg(), fault_plan=plan), _ecfg(4, seed),
        tracer=mp_tr,
    )
    assert mp_tr.committed_sequence() == seq_tr.committed_sequence()
    assert mp.model_stats == oracle.model_stats
    # The plan actually bit (otherwise this test proves nothing).
    ms = oracle.model_stats
    assert ms["fault_dropped"] > 0 or ms["fault_deflections"] > 0


def test_kill_at_checkpoint_resume_identical(tmp_path):
    """Shard-set resume: truncate the per-worker shard directories to a
    mid-run snapshot (what an uncoordinated kill leaves behind — one
    shard may even be a sequence ahead of another) and resume.  The
    completed resumed run must reproduce the oracle bit-for-bit.
    """
    procs = 2
    seed = GOLDEN_SEEDS[0]
    oracle = run_sequential(HotPotatoModel(_cfg()), DURATION, seed=seed)

    snap_dir = tmp_path / "snaps"
    marker = {"case": "mp-resume", "seed": seed}
    ckpt = Checkpointer(snap_dir, every=1, marker=marker)
    recorded = run_optimistic(
        HotPotatoModel(_cfg()), _ecfg(procs, seed, gvt_interval=4),
        checkpointer=ckpt,
    )
    assert recorded.model_stats == oracle.model_stats, (
        "attaching a checkpointer changed the committed run"
    )
    assert (snap_dir / "manifest.json").exists()
    shard_dirs = [snap_dir / f"shard_{i}" for i in range(procs)]
    snaps = [sorted(list_snapshots(d)) for d in shard_dirs]
    assert all(len(s) >= 3 for s in snaps), (
        "need mid-run snapshots to make truncation meaningful"
    )

    # Kill-at-checkpoint: keep an early prefix, and leave shard 0 one
    # sequence ahead of shard 1 — the workers must resume from the
    # newest *common* sequence, not the newest file.
    keep = 2
    for i, d in enumerate(shard_dirs):
        for snap in snaps[i][keep + (1 if i == 0 else 0):]:
            snap.unlink()

    resume_ckpt = Checkpointer(snap_dir, every=1 << 30, marker=marker)
    resume_ckpt.mp_resume = True
    resumed = run_optimistic(
        HotPotatoModel(_cfg()), _ecfg(procs, seed, gvt_interval=4),
        checkpointer=resume_ckpt,
    )
    assert resumed.model_stats == oracle.model_stats
    assert resumed.run.committed == oracle.run.committed


def test_resume_refuses_marker_mismatch(tmp_path):
    """A shard written by a differently-configured run must not resume
    silently into this one.  The worker's SnapshotError surfaces through
    the parent as its worker-failure report."""
    from repro.errors import ConfigurationError

    procs = 2
    seed = GOLDEN_SEEDS[0]
    snap_dir = tmp_path / "snaps"
    ckpt = Checkpointer(snap_dir, every=1, marker={"case": "original"})
    run_optimistic(
        HotPotatoModel(_cfg()), _ecfg(procs, seed, gvt_interval=4),
        checkpointer=ckpt,
    )
    resume_ckpt = Checkpointer(
        snap_dir, every=1 << 30, marker={"case": "different"}
    )
    resume_ckpt.mp_resume = True
    with pytest.raises(ConfigurationError, match="marker mismatch"):
        run_optimistic(
            HotPotatoModel(_cfg()), _ecfg(procs, seed, gvt_interval=4),
            checkpointer=resume_ckpt,
        )
