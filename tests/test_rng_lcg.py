"""Unit tests for the invertible LCG core."""

import pytest

from repro.rng.lcg import (
    INCREMENT,
    MASK64,
    MULTIPLIER,
    MULTIPLIER_INV,
    affine_pow,
    lcg_jump,
    lcg_next,
    lcg_output,
    lcg_prev,
    splitmix64,
)


def test_multiplier_inverse_is_modular_inverse():
    assert (MULTIPLIER * MULTIPLIER_INV) & MASK64 == 1


def test_next_prev_roundtrip():
    state = 0xDEADBEEF
    assert lcg_prev(lcg_next(state)) == state
    assert lcg_next(lcg_prev(state)) == state


def test_next_matches_affine_definition():
    state = 12345
    assert lcg_next(state) == (MULTIPLIER * state + INCREMENT) & MASK64


def test_output_in_unit_interval():
    state = 7
    for _ in range(1000):
        state = lcg_next(state)
        u = lcg_output(state)
        assert 0.0 <= u < 1.0


def test_output_uses_top_bits():
    # Two states differing only in low 11 bits produce the same output.
    s1 = 0xABCDEF0123456789
    s2 = s1 ^ 0x3FF
    assert lcg_output(s1) == lcg_output(s2)


def test_affine_pow_zero_is_identity():
    a, c = affine_pow(0)
    assert (a, c) == (1, 0)


def test_affine_pow_one_is_single_step():
    a, c = affine_pow(1)
    assert (a, c) == (MULTIPLIER, INCREMENT)


@pytest.mark.parametrize("k", [1, 2, 3, 7, 64, 1000])
def test_jump_forward_matches_iteration(k):
    state = 99
    expected = state
    for _ in range(k):
        expected = lcg_next(expected)
    assert lcg_jump(state, k) == expected


@pytest.mark.parametrize("k", [1, 5, 100])
def test_jump_backward_matches_iteration(k):
    state = 424242
    expected = state
    for _ in range(k):
        expected = lcg_prev(expected)
    assert lcg_jump(state, -k) == expected


def test_jump_composes():
    state = 31337
    assert lcg_jump(lcg_jump(state, 17), -17) == state
    assert lcg_jump(lcg_jump(state, 40), 2) == lcg_jump(state, 42)


def test_splitmix_differs_for_consecutive_inputs():
    outs = {splitmix64(i) for i in range(1000)}
    assert len(outs) == 1000


def test_splitmix_stays_in_64_bits():
    assert splitmix64(MASK64) <= MASK64
