"""Regression tests for pending-queue lazy-deletion accounting.

The allocation-free layout stores each event's prebuilt ``Event.entry``
tuple directly in the structure, with a process-wide serial breaking ties
between a dead entry and a live event that legitimately reuses the same
key.  These tests pin down the bookkeeping that layout must keep exact:
``_live`` (the queue's O(1) length), the ``in_pending`` flag, and the
cancel-then-repush-with-reused-key scenario produced by rollback re-sends
and by the event pool recycling a cancelled event's key.
"""

import pytest

from repro.core.event import Event, EventPool
from repro.core.queue import PendingQueue
from repro.core.splay import SplayPendingQueue
from repro.vt.time import EventKey


def ev(ts, origin=0, seq=0):
    return Event(EventKey(ts, origin, seq), 0, "k")


QUEUES = [PendingQueue, SplayPendingQueue]


@pytest.mark.parametrize("queue_cls", QUEUES)
def test_cancel_then_repush_reused_key_pops_fresh_event(queue_cls):
    # A rollback re-send creates a *new* event with the *same* key as the
    # cancelled original still buried in the structure.  The fresh entry's
    # serial is strictly larger, so the dead entry is discarded first and
    # the live one surfaces exactly once.
    q = queue_cls()
    old = ev(1.0)
    q.push(old)
    old.cancelled = True
    q.note_cancelled()
    new = ev(1.0)  # same EventKey, later serial
    q.push(new)
    assert len(q) == 1
    got = q.pop()
    assert got is new
    assert not q
    assert not old.in_pending and not new.in_pending


@pytest.mark.parametrize("queue_cls", QUEUES)
def test_pooled_recycle_of_cancelled_key_stays_distinct(queue_cls):
    # The event pool renews a recycled event with a fresh entry serial, so
    # even an event object whose key matches a dead entry's is ordered
    # after it and never compared to it as an Event.
    pool = EventPool()
    q = queue_cls()
    old = pool.acquire(EventKey(2.0, 0, 0), 0, "k")
    q.push(old)
    old.cancelled = True
    q.note_cancelled()
    assert len(q) == 0
    recycled = pool.acquire(EventKey(2.0, 0, 0), 0, "k")  # key reuse
    assert recycled is not old
    q.push(recycled)
    assert len(q) == 1
    assert q.pop() is recycled


@pytest.mark.parametrize("queue_cls", QUEUES)
def test_live_count_is_exact_under_churn(queue_cls):
    # _live must equal the number of live (non-cancelled) queued events
    # after every operation, even while dead entries linger internally.
    q = queue_cls()
    events = [ev(float((7 * i) % 13), seq=i) for i in range(60)]
    live = set()
    for e in events:
        q.push(e)
        live.add(e)
        assert len(q) == len(live)
    for i, e in enumerate(events):
        if i % 4 == 0:
            e.cancelled = True
            q.note_cancelled()
            live.discard(e)
            assert len(q) == len(live)
    while q:
        e = q.pop()
        live.discard(e)
        assert not e.cancelled
        assert len(q) == len(live)
    assert not live


@pytest.mark.parametrize("queue_cls", QUEUES)
def test_pop_below_keeps_live_count_and_flags_consistent(queue_cls):
    q = queue_cls()
    early, late = ev(1.0), ev(9.0, seq=1)
    q.push(early)
    q.push(late)
    # Limit below the minimum: nothing is popped, nothing is unaccounted.
    assert q.pop_below(1.0) is None
    assert len(q) == 2 and early.in_pending and late.in_pending
    got = q.pop_below(5.0)
    assert got is early and not early.in_pending
    assert len(q) == 1
    assert q.pop_below(5.0) is None
    assert len(q) == 1 and late.in_pending


@pytest.mark.parametrize("queue_cls", QUEUES)
def test_pop_below_sweeps_dead_entries_and_clears_in_pending(queue_cls):
    q = queue_cls()
    dead, live = ev(1.0), ev(2.0, seq=1)
    q.push(dead)
    q.push(live)
    dead.cancelled = True
    q.note_cancelled()
    # The dead minimum is swept during the fused peek+pop, its in_pending
    # flag dropped, and the live event below the limit is returned.
    assert q.pop_below(10.0) is live
    assert not dead.in_pending
    assert not live.in_pending
    assert len(q) == 0


@pytest.mark.parametrize("queue_cls", QUEUES)
def test_rollback_requeue_same_object_single_live_entry(queue_cls):
    # undo_event re-pushes the same Event object (same entry tuple).  The
    # structure must treat it as one live entry per push, popping it once.
    q = queue_cls()
    e = ev(3.0)
    q.push(e)
    assert q.pop() is e
    q.push(e)  # requeued after rollback
    assert e.in_pending and len(q) == 1
    assert q.pop() is e
    assert not q
