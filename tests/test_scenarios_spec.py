"""Scenario schema, validation, hashing and compilation."""

import json
import pathlib

import pytest

from repro.scenarios import (
    SCHEMA_ID,
    Scenario,
    ScenarioError,
    compile_scenario,
    load_scenario,
)

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples" / "scenarios")
    .glob("*.json")
)


def _doc(**over):
    doc = {
        "schema": SCHEMA_ID,
        "name": "unit",
        "topology": {"kind": "torus", "n": 4},
        "traffic": {"model": "bernoulli", "injector_fraction": 1.0},
        "routing": {"policy": "busch"},
        "engine": {"duration": 8.0, "seed": 7},
    }
    doc.update(over)
    return doc


def test_examples_exist_and_compile():
    assert len(EXAMPLES) >= 6, "the issue requires >= 6 bundled scenarios"
    for path in EXAMPLES:
        compiled = compile_scenario(load_scenario(path))
        assert compiled.name
        assert len(compiled.scenario_hash()) == 16


def test_examples_cover_the_feature_matrix():
    scenarios = [load_scenario(p) for p in EXAMPLES]
    strategies = {
        s.traffic.get("strategy")
        for s in scenarios
        if s.traffic["model"] == "adversarial"
    }
    assert {"hotspot", "transpose", "tornado", "burst"} <= strategies
    assert any(s.traffic["model"] == "bernoulli" for s in scenarios)
    assert any(s.topology["kind"] == "mesh" for s in scenarios)
    assert any(s.routing.get("policy") == "two-choice" for s in scenarios)
    assert any(s.faults for s in scenarios)


def test_hash_is_content_addressed():
    a = Scenario.from_dict(_doc())
    b = Scenario.from_dict(_doc())
    c = Scenario.from_dict(_doc(engine={"duration": 9.0, "seed": 7}))
    assert a.scenario_hash() == b.scenario_hash()
    assert a.scenario_hash() != c.scenario_hash()


def test_rejects_wrong_schema_id():
    with pytest.raises(ScenarioError, match="schema"):
        Scenario.from_dict(_doc(schema="NOPE99"))


def test_rejects_unknown_top_level_key():
    with pytest.raises(ScenarioError, match="unknown"):
        Scenario.from_dict(_doc(extra={"x": 1}))


def test_rejects_unknown_policy():
    scenario = Scenario.from_dict(_doc(routing={"policy": "teleport"}))
    with pytest.raises(ScenarioError, match="policy"):
        scenario.validate()


def test_rejects_unknown_strategy():
    scenario = Scenario.from_dict(
        _doc(traffic={"model": "adversarial", "strategy": "meteor"})
    )
    with pytest.raises(ScenarioError, match="strategy"):
        scenario.validate()


def test_rejects_missing_duration():
    scenario = Scenario.from_dict(_doc(engine={"seed": 7}))
    with pytest.raises(ScenarioError, match="duration"):
        scenario.validate()


def test_rejects_unknown_override():
    scenario = Scenario.from_dict(
        _doc(engine={"duration": 8.0, "overrides": {"warp_factor": 9}})
    )
    with pytest.raises(ScenarioError):
        scenario.validate()


def test_compile_resolves_script_traffic():
    doc = _doc(
        traffic={
            "model": "adversarial",
            "strategy": "script",
            "script": [
                {"step": 0, "node": 1, "dest": 5},
                {"step": 2, "node": 1, "dest": 9},
            ],
        }
    )
    compiled = compile_scenario(Scenario.from_dict(doc))
    assert compiled.injection_plan is not None
    assert len(compiled.injection_plan.entries) == 2


def test_compile_rejects_script_outside_topology():
    doc = _doc(
        topology={"kind": "torus", "n": 2},
        traffic={
            "model": "adversarial",
            "strategy": "script",
            "script": [{"step": 0, "node": 1, "dest": 77}],
        },
    )
    with pytest.raises(ScenarioError):
        compile_scenario(Scenario.from_dict(doc))


def test_compile_default_kps_fit_odd_grids():
    doc = _doc(topology={"kind": "mesh", "n": 6})
    compiled = compile_scenario(Scenario.from_dict(doc))
    assert compiled.n_kps >= compiled.n_pes
    assert 6 * 6 % compiled.n_kps == 0 or compiled.n_kps <= 36


def test_compile_relative_fault_path(tmp_path):
    from repro.faults import generate_plan
    from repro.net import TorusTopology

    plan = generate_plan(
        TorusTopology(4), duration=8.0, link_fail_rate=0.5, seed=5
    )
    (tmp_path / "plan.json").write_text(
        json.dumps(plan.to_dict(), sort_keys=True)
    )
    doc = _doc(faults="plan.json")
    (tmp_path / "scenario.json").write_text(json.dumps(doc, sort_keys=True))
    compiled = compile_scenario(load_scenario(tmp_path / "scenario.json"))
    assert compiled.fault_plan is not None
    assert not compiled.fault_plan.is_empty


def test_scenario_json_roundtrip(tmp_path):
    scenario = Scenario.from_dict(_doc())
    path = tmp_path / "unit.json"
    path.write_text(scenario.to_json())
    again = load_scenario(path)
    assert again.scenario_hash() == scenario.scenario_hash()
