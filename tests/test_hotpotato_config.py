"""Unit tests for HotPotatoConfig validation and derived values."""

import pytest

from repro.errors import ConfigurationError
from repro.hotpotato.config import HotPotatoConfig


def test_defaults():
    cfg = HotPotatoConfig()
    assert cfg.n == 8
    assert cfg.num_routers == 64
    assert cfg.absorb_sleeping
    assert cfg.torus
    assert cfg.arrival_jitter


def test_upgrade_probabilities_match_paper():
    cfg = HotPotatoConfig(n=10)
    assert cfg.sleeping_upgrade_p == pytest.approx(1 / 240)  # 1/(24n)
    assert cfg.active_upgrade_p == pytest.approx(1 / 160)  # 1/(16n)


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(n=1),
        dict(duration=0.0),
        dict(injector_fraction=-0.1),
        dict(injector_fraction=1.1),
        dict(initial_fill=2.0),
        dict(jitter_slots=0),
        dict(sleeping_upgrade_scale=0.0),
        dict(active_upgrade_scale=-1.0),
    ],
)
def test_invalid_configs(kwargs):
    with pytest.raises(ConfigurationError):
        HotPotatoConfig(**kwargs)


def test_frozen():
    cfg = HotPotatoConfig()
    with pytest.raises(AttributeError):
        cfg.n = 16
