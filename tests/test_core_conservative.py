"""Tests for the conservative (YAWNS / null-message) engine."""

import pytest

from repro.core.conservative import (
    ConservativeConfig,
    ConservativeKernel,
    run_conservative,
)
from repro.core.engine import run_sequential
from repro.core.lp import LogicalProcess, Model
from repro.errors import ConfigurationError, SchedulingError
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.model import HotPotatoModel
from repro.models.phold import PholdConfig, PholdModel

END = 15.0
PHOLD = PholdConfig(n_lps=24, jobs_per_lp=3, remote_fraction=0.7)


# ----------------------------------------------------------------------
# Config validation.
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        dict(end_time=0.0),
        dict(end_time=10.0, n_pes=0),
        dict(end_time=10.0, lookahead=0.0),
        dict(end_time=10.0, sync="optimistic"),
    ],
)
def test_invalid_configs(kwargs):
    with pytest.raises(ConfigurationError):
        ConservativeConfig(**kwargs)


def test_model_without_lookahead_rejected():
    class NoLookahead(Model):
        def build(self):
            return [LogicalProcess(0)]

        def collect_stats(self, lps):
            return {}

    with pytest.raises(ConfigurationError):
        ConservativeKernel(NoLookahead(), ConservativeConfig(end_time=1.0))


# ----------------------------------------------------------------------
# Oracle equivalence.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def phold_oracle():
    return run_sequential(PholdModel(PHOLD), END).model_stats


@pytest.mark.parametrize("sync", ["yawns", "null"])
@pytest.mark.parametrize("n_pes", [1, 2, 4])
def test_phold_matches_oracle(phold_oracle, sync, n_pes):
    cfg = ConservativeConfig(
        end_time=END, n_pes=n_pes, sync=sync, mapping="striped"
    )
    result = run_conservative(PholdModel(PHOLD), cfg)
    assert result.model_stats == phold_oracle
    assert result.run.engine == "conservative"
    assert result.run.events_rolled_back == 0  # by construction


@pytest.mark.parametrize("sync", ["yawns", "null"])
def test_hotpotato_matches_oracle(sync):
    hcfg = HotPotatoConfig(n=4, duration=END, injector_fraction=1.0)
    oracle = run_sequential(HotPotatoModel(hcfg), END).model_stats
    cfg = ConservativeConfig(end_time=END, n_pes=4, sync=sync)
    result = run_conservative(HotPotatoModel(hcfg), cfg)
    assert result.model_stats == oracle


def test_explicit_lookahead_overrides_model():
    cfg = ConservativeConfig(
        end_time=END, n_pes=2, lookahead=0.05, mapping="striped"
    )
    kernel = ConservativeKernel(PholdModel(PHOLD), cfg)
    assert kernel.lookahead == 0.05


# ----------------------------------------------------------------------
# Null messages and lookahead enforcement.
# ----------------------------------------------------------------------
def test_null_messages_counted():
    cfg = ConservativeConfig(end_time=END, n_pes=4, sync="null", mapping="striped")
    kernel = ConservativeKernel(PholdModel(PHOLD), cfg)
    kernel.run()
    assert kernel.null_messages > 0
    assert kernel.null_ratio > 0
    assert kernel.real_messages > 0


def test_yawns_sends_no_nulls():
    cfg = ConservativeConfig(end_time=END, n_pes=4, sync="yawns", mapping="striped")
    kernel = ConservativeKernel(PholdModel(PHOLD), cfg)
    kernel.run()
    assert kernel.null_messages == 0
    assert kernel.rounds > 0


def test_smaller_lookahead_means_more_rounds():
    # Claimed lookahead must stay within the model's real guarantee (0.1
    # for this PHOLD config) — we can only under-promise.
    rounds = {}
    for la in (0.02, 0.1):
        cfg = ConservativeConfig(
            end_time=END, n_pes=2, sync="yawns", lookahead=la, mapping="striped"
        )
        kernel = ConservativeKernel(PholdModel(PHOLD), cfg)
        kernel.run()
        rounds[la] = kernel.rounds
    assert rounds[0.02] > rounds[0.1]


def test_lookahead_violation_detected():
    # Lookahead governs cross-PE messages, so the liar must talk to an LP
    # on another PE to be caught (self-sends at any delay are legal).
    class Liar(Model):
        lookahead = 5.0  # claims 5.0 but sends cross-LP at +0.1

        def build(self):
            class LiarLP(LogicalProcess):
                def on_init(self):
                    if self.id == 0:
                        self.send(6.0, self.id, "tick")

                def forward(self, event):
                    self.send(self.now + 0.1, 1 - self.id, "tick")

                def reverse(self, event):  # pragma: no cover
                    pass

            return [LiarLP(0), LiarLP(1)]

        def collect_stats(self, lps):
            return {}

    cfg = ConservativeConfig(end_time=20.0, n_pes=2, mapping="striped")
    with pytest.raises(SchedulingError):
        run_conservative(Liar(), cfg)


def test_self_sends_below_lookahead_are_legal():
    # A server's own completion events may be arbitrarily close in time.
    class SelfTicker(Model):
        lookahead = 1.0

        def build(self):
            class TickLP(LogicalProcess):
                def __init__(self, lp_id):
                    super().__init__(lp_id)
                    self.state = [0]

                def on_init(self):
                    self.send(1.0, self.id, "tick")

                def forward(self, event):
                    self.state[0] += 1
                    self.send(self.now + 0.01, self.id, "tick")

                def reverse(self, event):  # pragma: no cover
                    self.state[0] -= 1

            return [TickLP(0), TickLP(1)]

        def collect_stats(self, lps):
            return {"ticks": tuple(lp.state[0] for lp in lps)}

    cfg = ConservativeConfig(end_time=3.0, n_pes=2, mapping="striped")
    result = run_conservative(SelfTicker(), cfg)
    assert result.model_stats["ticks"][0] > 100


def test_stats_shape():
    cfg = ConservativeConfig(end_time=END, n_pes=2, sync="null", mapping="striped")
    result = run_conservative(PholdModel(PHOLD), cfg)
    run = result.run
    assert run.committed == run.processed
    assert run.event_rate > 0
    assert run.makespan_seconds > 0
    assert len(run.per_pe_busy_seconds) == 2
