"""Tests for the Table result container."""

import pytest

from repro.experiments.report import Table


def make():
    t = Table(title="T", columns=["a", "b"])
    t.add_row(1, 2.5)
    t.add_row(10000, 0.123456)
    return t


def test_add_row_checks_width():
    t = make()
    with pytest.raises(ValueError):
        t.add_row(1)


def test_column_access():
    t = make()
    assert t.column("a") == [1, 10000]
    with pytest.raises(ValueError):
        t.column("zzz")


def test_text_rendering():
    text = make().to_text()
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[2] and "b" in lines[2]
    assert "0.123" in text


def test_text_includes_notes():
    t = make()
    t.notes.append("hello")
    assert "note: hello" in t.to_text()


def test_csv_rendering():
    csv_text = make().to_csv()
    rows = csv_text.strip().splitlines()
    assert rows[0] == "a,b"
    assert rows[1] == "1,2.5"
    assert len(rows) == 3


def test_bool_formatting():
    t = Table(title="B", columns=["ok"])
    t.add_row(True)
    t.add_row(False)
    text = t.to_text()
    assert "yes" in text and "no" in text


def test_large_float_formatting():
    t = Table(title="F", columns=["rate"])
    t.add_row(1234567.89)
    assert "1,234,568" in t.to_text()


def test_markdown_rendering():
    t = make()
    t.notes.append("a note")
    md = t.to_markdown()
    lines = md.splitlines()
    assert lines[0] == "### T"
    assert lines[2] == "| a | b |"
    assert lines[3] == "|---|---|"
    assert "| 1 | 2.5 |" in md
    assert "*a note*" in md
