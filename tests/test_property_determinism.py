"""Property-based engine-equivalence: the crown invariant (DESIGN.md 2).

Hypothesis drives the optimistic engine through random configurations
(PEs, KPs, batch sizes, windows, mappings, strategies, transports) and the
committed results must always equal the sequential oracle's — on both the
PHOLD and the hot-potato workloads.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import EngineConfig
from repro.core.engine import run_sequential
from repro.core.optimistic import run_optimistic
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.model import HotPotatoModel
from repro.models.phold import PholdConfig, PholdModel

END = 20.0
PHOLD_CFG = PholdConfig(n_lps=24, jobs_per_lp=2, remote_fraction=0.6)
HP_CFG = HotPotatoConfig(n=4, duration=END, injector_fraction=1.0)


@pytest.fixture(scope="module")
def phold_oracle():
    return run_sequential(PholdModel(PHOLD_CFG), END).model_stats


@pytest.fixture(scope="module")
def hp_oracle():
    return run_sequential(HotPotatoModel(HP_CFG), END).model_stats


@st.composite
def engine_configs(draw):
    n_pes = draw(st.integers(min_value=1, max_value=6))
    # Keep n_kps a multiple of n_pes and within the LP population.
    kp_mult = draw(st.integers(min_value=1, max_value=max(1, 16 // n_pes)))
    n_kps = n_pes * kp_mult
    use_window = draw(st.booleans())
    return EngineConfig(
        end_time=END,
        n_pes=n_pes,
        n_kps=n_kps,
        batch_size=draw(st.integers(min_value=1, max_value=512)),
        window=draw(st.sampled_from([0.3, 1.0, 4.0])) if use_window else None,
        gvt_interval=draw(st.integers(min_value=1, max_value=5)),
        mapping=draw(st.sampled_from(["striped", "random"])),
        rollback=draw(st.sampled_from(["reverse", "copy"])),
        transport=draw(st.sampled_from(["immediate", "mailbox"])),
        gvt=draw(st.sampled_from(["synchronous", "mattern"])),
        cancellation=draw(st.sampled_from(["aggressive", "lazy"])),
        seed=0x5EED,
    )


@given(cfg=engine_configs())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_phold_matches_oracle_under_any_configuration(cfg, phold_oracle):
    result = run_optimistic(PholdModel(PHOLD_CFG), cfg)
    assert result.model_stats == phold_oracle
    assert result.run.committed == result.run.processed - result.run.events_rolled_back


@given(cfg=engine_configs())
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_hotpotato_matches_oracle_under_any_configuration(cfg, hp_oracle):
    result = run_optimistic(HotPotatoModel(HP_CFG), cfg)
    assert result.model_stats == hp_oracle
