"""The degradation ladder's heavy rungs: restore, fallback, abort.

The convergence contract (docs/HEALTH.md): every watchdog-triggered
recovery — restore from the last good snapshot, or fall back to a more
conservative engine — must produce exactly the committed results the
undisturbed run produces.  Committed results are engine-independent and
snapshot grafts are bit-exact, so recovery never changes the science.
"""

import json

import pytest

from repro.ckpt import Checkpointer
from repro.core.config import EngineConfig
from repro.core.conservative import ConservativeConfig, ConservativeKernel
from repro.core.engine import SequentialEngine
from repro.core.optimistic import TimeWarpKernel
from repro.core.trace import Tracer
from repro.errors import HealthAbort
from repro.health import (
    FALLBACK_CHAIN,
    HealthConfig,
    RecoveryPolicy,
    Watchdog,
    run_with_recovery,
)
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.model import HotPotatoModel

N = 4
DURATION = 12.0
SEED = 7


def _model() -> HotPotatoModel:
    return HotPotatoModel(
        HotPotatoConfig(n=N, duration=DURATION, injector_fraction=1.0)
    )


def _build(kind: str):
    model = _model()
    if kind == "sequential":
        return SequentialEngine(model, DURATION, seed=SEED)
    if kind == "conservative":
        return ConservativeKernel(
            model,
            ConservativeConfig(end_time=DURATION, n_pes=2, seed=SEED,
                               lookahead=model.lookahead),
        )
    return TimeWarpKernel(
        model,
        EngineConfig(end_time=DURATION, n_pes=2, n_kps=8, batch_size=16,
                     seed=SEED),
    )


@pytest.fixture(scope="module")
def baseline():
    """Undisturbed optimistic run: stats + committed sequence."""
    tracer = Tracer()
    result = _build("optimistic").attach_tracer(tracer).run()
    return result.model_stats, tracer.committed_sequence()


# ----------------------------------------------------------------------
# RecoveryPolicy mechanics.
# ----------------------------------------------------------------------
def test_policy_fallback_chain():
    policy = RecoveryPolicy()
    assert FALLBACK_CHAIN == ("optimistic", "conservative", "sequential")
    assert policy.next_kind("optimistic") == "conservative"
    assert policy.next_kind("conservative") == "sequential"
    assert policy.next_kind("sequential") is None
    assert policy.next_kind("bogus") is None
    assert RecoveryPolicy(fallback=False).next_kind("optimistic") is None


def test_policy_backoff_doubles():
    policy = RecoveryPolicy(backoff_base=0.5)
    assert [policy.backoff(a) for a in (1, 2, 3)] == [0.5, 1.0, 2.0]


# ----------------------------------------------------------------------
# Recovery convergence.
# ----------------------------------------------------------------------
def test_forced_fallback_converges_on_baseline(baseline):
    """opt raises mid-run; the conservative rebuild commits identically."""
    base_stats, base_sequence = baseline
    wd = Watchdog(
        HealthConfig(trip_at_boundary=5, ladder=("fallback", "abort")),
    )
    tracers = {}

    def build(kind):
        engine = _build(kind)
        tracers[id(engine)] = Tracer()
        return engine.attach_tracer(tracers[id(engine)])

    actions = []
    rec = run_with_recovery(
        build, wd, kind="optimistic",
        policy=RecoveryPolicy(backoff_base=0.0),
        sleep=lambda _s: None, on_action=actions.append,
    )
    assert rec.kind == "conservative"
    assert rec.recovered
    assert [a["action"] for a in rec.actions] == ["fallback"]
    assert actions == rec.actions  # on_action saw the same journal
    assert rec.actions[0]["to"] == "conservative"
    assert rec.result.model_stats == base_stats
    assert tracers[id(rec.engine)].committed_sequence() == base_sequence


def test_forced_restore_converges_on_baseline(tmp_path, baseline):
    """opt raises after snapshots exist; the graft resumes and converges."""
    base_stats, _ = baseline
    ckpt = Checkpointer(tmp_path / "ckpt", every=2)
    wd = Watchdog(
        HealthConfig(trip_at_boundary=40, ladder=("restore", "abort")),
    )
    slept = []
    rec = run_with_recovery(
        lambda kind: _build(kind), wd, kind="optimistic",
        policy=RecoveryPolicy(max_restores=2, backoff_base=0.25),
        ckpt=ckpt, sleep=slept.append,
    )
    assert rec.kind == "optimistic"
    assert [a["action"] for a in rec.actions] == ["restore"]
    assert rec.actions[0]["snapshot"].endswith(".rpsnap")
    assert slept == [0.25]
    assert rec.result.model_stats == base_stats


def test_restore_without_checkpointer_escalates_to_fallback(baseline):
    base_stats, _ = baseline
    wd = Watchdog(
        HealthConfig(trip_at_boundary=5,
                     ladder=("restore", "fallback", "abort")),
    )
    rec = run_with_recovery(
        lambda kind: _build(kind), wd, kind="optimistic",
        policy=RecoveryPolicy(backoff_base=0.0), sleep=lambda _s: None,
    )
    assert rec.kind == "conservative"
    assert [a["action"] for a in rec.actions] == ["fallback"]
    assert rec.result.model_stats == base_stats


def test_exhausted_ladder_aborts_with_forensics_bundle(tmp_path):
    """No fallback allowed: the ladder ends in abort + a forensics bundle."""
    wd = Watchdog(HealthConfig(trip_at_boundary=5, ladder=("abort",)))
    policy = RecoveryPolicy(
        fallback=False, forensics_dir=tmp_path / "forensics"
    )
    with pytest.raises(HealthAbort) as exc_info:
        run_with_recovery(
            lambda kind: _build(kind), wd, kind="optimistic",
            policy=policy, sleep=lambda _s: None,
        )
    manifest = tmp_path / "forensics" / "forensics.json"
    assert str(manifest) in str(exc_info.value)
    doc = json.loads(manifest.read_text())
    assert doc["trigger"]["detector"] == "forced"
    assert doc["health_events"], "watchdog event log missing from bundle"


def test_unwatched_run_with_recovery_is_a_plain_run(baseline):
    base_stats, _ = baseline
    rec = run_with_recovery(
        lambda kind: _build(kind), Watchdog(), kind="optimistic",
    )
    assert not rec.recovered
    assert rec.actions == []
    assert rec.result.model_stats == base_stats
