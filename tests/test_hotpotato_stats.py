"""Unit tests for RouterStats and the aggregation visitor."""

from repro.hotpotato.stats import RouterStats, aggregate_router_stats


class FakeLP:
    def __init__(self, stats):
        self.stats = stats


def test_initial_counters_zero():
    s = RouterStats()
    assert s.delivered == 0
    assert s.delivered_by_priority == [0, 0, 0, 0]
    assert s.signature()[0] == 0


def test_copy_is_deep_for_lists():
    s = RouterStats()
    s.delivered_by_priority[2] = 5
    c = s.copy()
    c.delivered_by_priority[2] = 9
    assert s.delivered_by_priority[2] == 5
    assert c.delivered == s.delivered


def test_signature_covers_every_slot():
    s = RouterStats()
    sig0 = s.signature()
    assert len(sig0) == len(RouterStats.__slots__)
    s.routes += 1
    assert s.signature() != sig0


def test_signature_equality_semantics():
    a, b = RouterStats(), RouterStats()
    assert a.signature() == b.signature()
    a.max_inject_wait = 3
    assert a.signature() != b.signature()


def test_aggregate_totals_and_averages():
    a, b = RouterStats(), RouterStats()
    a.delivered, a.total_delivery_time, a.total_distance = 2, 10, 6
    a.max_delivery_time = 7
    a.delivered_by_priority = [2, 0, 0, 0]
    b.delivered, b.total_delivery_time, b.total_distance = 3, 5, 9
    b.max_delivery_time = 4
    b.delivered_by_priority = [1, 2, 0, 0]
    a.injected, a.total_inject_wait, a.max_inject_wait = 4, 8, 5
    b.injected = 0
    out = aggregate_router_stats([FakeLP(a), FakeLP(b)])
    assert out["delivered"] == 5
    assert out["avg_delivery_time"] == 3.0
    assert out["avg_distance"] == 3.0
    assert out["max_delivery_time"] == 7
    assert out["delivered_by_priority"] == (3, 2, 0, 0)
    assert out["injected"] == 4
    assert out["avg_inject_wait"] == 2.0
    assert out["max_inject_wait"] == 5
    assert len(out["per_router"]) == 2


def test_aggregate_empty_division_guards():
    out = aggregate_router_stats([FakeLP(RouterStats())])
    assert out["avg_delivery_time"] == 0.0
    assert out["avg_inject_wait"] == 0.0
    assert out["deflection_rate"] == 0.0
    assert out["link_utilization"] == 0.0


def test_aggregate_deflection_rate():
    s = RouterStats()
    s.routes, s.deflections = 10, 3
    out = aggregate_router_stats([FakeLP(s)])
    assert out["deflection_rate"] == 0.3
