"""Tests for the public package surface: imports, lazy attributes, errors."""

import pytest

import repro
from repro.errors import (
    ConfigurationError,
    ModelError,
    ReproError,
    RollbackError,
    SchedulingError,
    TopologyError,
)


def test_version():
    assert repro.__version__ == "1.0.0"


def test_top_level_exports_exist():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_lazy_hotpotato_attributes():
    assert repro.HotPotatoConfig is not None
    assert repro.HotPotatoModel is not None
    assert repro.HotPotatoSimulation is not None


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError):
        repro.NoSuchThing


def test_experiments_lazy_attributes():
    import repro.experiments as exp

    assert "fig3" in exp.EXPERIMENTS
    assert callable(exp.run_experiment)
    with pytest.raises(AttributeError):
        exp.nope


@pytest.mark.parametrize(
    "exc",
    [ConfigurationError, SchedulingError, RollbackError, TopologyError, ModelError],
)
def test_error_hierarchy(exc):
    assert issubclass(exc, ReproError)
    assert issubclass(ReproError, Exception)


def test_errors_catchable_as_base():
    with pytest.raises(ReproError):
        raise SchedulingError("x")


def test_console_script_entry_point_importable():
    from repro.experiments.runner import main

    assert callable(main)


def test_models_package():
    from repro.models import PholdConfig, PholdLP, PholdModel

    assert PholdConfig and PholdLP and PholdModel
