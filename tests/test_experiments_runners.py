"""Integration tests: every experiment regenerates at tiny scale, with the

shape assertions the report's narrative makes.
"""

import pathlib

import pytest

from repro.experiments.common import SweepParams, kp_count_for
from repro.experiments.figures import EXPERIMENTS, experiment_ids, run_experiment
from repro.experiments.runner import build_parser, main

_SCENARIO = (
    pathlib.Path(__file__).resolve().parent.parent
    / "examples" / "scenarios" / "adversarial_faulted.json"
)

TINY = SweepParams(
    sizes=(4, 8),
    duration=30.0,
    loads=(0.5, 1.0),
    pe_counts=(1, 2, 4),
    kp_counts=(4, 16),
    window=2.0,
    scenarios=(str(_SCENARIO),),
)


# ----------------------------------------------------------------------
# kp_count_for.
# ----------------------------------------------------------------------
def test_kp_count_exact_when_it_fits():
    assert kp_count_for(8, 64, 4) == 64
    assert kp_count_for(16, 64, 4) == 64


def test_kp_count_rounds_down():
    assert kp_count_for(4, 64, 4) == 16  # 4x4 grid holds at most 16 KPs
    assert kp_count_for(6, 64, 4) == 36


def test_kp_count_unusable_raises():
    with pytest.raises(ValueError):
        kp_count_for(2, 1, 4)  # cannot give each of 4 PEs a KP on 2x2=4 LPs... 4 KPs fit
        # (the above fits; force a real failure)
    with pytest.raises(ValueError):
        kp_count_for(3, 2, 4)


# ----------------------------------------------------------------------
# Every registered experiment runs and has rows.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("exp_id", experiment_ids())
def test_experiment_regenerates(exp_id):
    table = run_experiment(exp_id, TINY)
    assert table.rows, f"{exp_id} produced no rows"
    assert table.title
    assert table.to_csv().strip()


def test_unknown_experiment_raises():
    with pytest.raises(KeyError):
        run_experiment("fig99", TINY)


# ----------------------------------------------------------------------
# Shape assertions per figure.
# ----------------------------------------------------------------------
def test_fig3_delivery_grows_with_n():
    table = run_experiment("fig3", TINY)
    for load in TINY.loads:
        col = table.column(f"{int(load*100)}% injectors")
        assert col == sorted(col)


def test_fig4_wait_grows_with_load():
    table = run_experiment("fig4", TINY)
    lo = table.column(f"{int(TINY.loads[0]*100)}% injectors")
    hi = table.column(f"{int(TINY.loads[-1]*100)}% injectors")
    assert hi[-1] > lo[-1]


def test_fig5_parallel_beats_sequential():
    table = run_experiment("fig5", TINY)
    one = table.column("1 PE")
    four = table.column("4 PE")
    assert all(f > o for f, o in zip(four, one))


def test_fig6_efficiency_below_linear():
    table = run_experiment("fig6", TINY)
    for col_name in ("2 PE", "4 PE"):
        for value in table.column(col_name):
            assert 0.0 < value <= 1.2  # super-linear is rare but possible


def test_fig7_more_kps_fewer_rollbacks():
    table = run_experiment("fig7", TINY)
    cols = [c for c in table.columns if c.endswith("KPs")]
    first, last = cols[0], cols[-1]
    for row_first, row_last in zip(table.column(first), table.column(last)):
        if row_first != "-" and row_last != "-":
            assert row_last <= row_first


def test_determinism_table_all_identical():
    table = run_experiment("determinism", TINY)
    assert all(table.column("identical"))


# ----------------------------------------------------------------------
# CLI.
# ----------------------------------------------------------------------
def test_parser_defaults():
    args = build_parser().parse_args(["fig3"])
    assert args.sizes == (8, 16)
    assert args.duration == 100.0


def test_parser_rejects_bad_lists():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig3", "--sizes", "a,b"])


def test_main_runs_one_experiment(capsys, tmp_path):
    rc = main(
        [
            "fig3",
            "--sizes",
            "4",
            "--duration",
            "20",
            "--loads",
            "1.0",
            "--csv-dir",
            str(tmp_path),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "Figure 3" in out
    assert (tmp_path / "fig3.csv").exists()


def test_main_rejects_unknown(capsys):
    assert main(["nope"]) == 2


def test_registry_descriptions():
    for exp_id, (desc, runner) in EXPERIMENTS.items():
        assert desc and callable(runner)
