"""Unit tests for mesh (non-wrapping) geometry."""

import pytest

from repro.errors import TopologyError
from repro.net.directions import DIRECTIONS, Direction
from repro.net.mesh import MeshTopology


def test_no_wrap_at_edges():
    m = MeshTopology(3)
    assert m.neighbor(0, Direction.NORTH) is None
    assert m.neighbor(0, Direction.WEST) is None
    assert m.neighbor(8, Direction.SOUTH) is None
    assert m.neighbor(8, Direction.EAST) is None


def test_interior_neighbors():
    m = MeshTopology(3)
    assert m.neighbor(4, Direction.NORTH) == 1
    assert m.neighbor(4, Direction.EAST) == 5
    assert m.neighbor(4, Direction.SOUTH) == 7
    assert m.neighbor(4, Direction.WEST) == 3


def test_degree():
    m = MeshTopology(3)
    assert m.degree(0) == 2  # corner
    assert m.degree(1) == 3  # edge
    assert m.degree(4) == 4  # interior


def test_distance_is_manhattan():
    m = MeshTopology(5)
    assert m.distance(m.node_id(0, 0), m.node_id(4, 4)) == 8
    assert m.distance(m.node_id(0, 0), m.node_id(0, 4)) == 4  # no wrap


def test_diameter_is_2n_minus_2():
    # §1.1: mesh max distance is 2N-2 vs about N for the torus.
    assert MeshTopology(8).diameter() == 14


def test_node_id_rejects_off_grid():
    m = MeshTopology(4)
    with pytest.raises(TopologyError):
        m.node_id(4, 0)
    with pytest.raises(TopologyError):
        m.node_id(0, -1)


def test_good_dirs_never_point_off_grid():
    m = MeshTopology(4)
    for src in range(m.num_nodes):
        for dst in range(m.num_nodes):
            for d in m.good_dirs(src, dst):
                assert m.neighbor(src, d) is not None


def test_good_dirs_decrease_distance():
    m = MeshTopology(4)
    for src in range(m.num_nodes):
        for dst in range(m.num_nodes):
            for d in m.good_dirs(src, dst):
                nb = m.neighbor(src, d)
                assert m.distance(nb, dst) == m.distance(src, dst) - 1


def test_homerun_row_first_then_column():
    m = MeshTopology(6)
    src, dst = m.node_id(0, 0), m.node_id(3, 2)
    path = []
    node = src
    while node != dst:
        d = m.homerun_dir(node, dst)
        path.append(d)
        node = m.neighbor(node, d)
    assert path == [Direction.EAST, Direction.EAST] + [Direction.SOUTH] * 3


def test_is_turning():
    m = MeshTopology(5)
    dst = m.node_id(3, 2)
    assert m.is_turning(m.node_id(0, 2), dst)
    assert not m.is_turning(m.node_id(0, 1), dst)


def test_wraps_flag():
    assert MeshTopology(3).wraps is False
