"""Tests for the PHOLD reference model."""

import pytest

from repro.core.engine import SequentialEngine, run_sequential
from repro.errors import ConfigurationError
from repro.models.phold import JOB, PholdConfig, PholdModel


def test_config_validation():
    with pytest.raises(ConfigurationError):
        PholdConfig(n_lps=0)
    with pytest.raises(ConfigurationError):
        PholdConfig(jobs_per_lp=-1)
    with pytest.raises(ConfigurationError):
        PholdConfig(lookahead=0.0)
    with pytest.raises(ConfigurationError):
        PholdConfig(remote_fraction=1.5)


def test_job_population_is_conserved():
    cfg = PholdConfig(n_lps=16, jobs_per_lp=3)
    engine = SequentialEngine(PholdModel(cfg), 20.0)
    engine.run()
    in_flight = sum(1 for ev in engine.pending if ev.kind == JOB)
    assert in_flight == 16 * 3  # every job is always somewhere


def test_handled_counts_accumulate():
    cfg = PholdConfig(n_lps=8, jobs_per_lp=2)
    result = run_sequential(PholdModel(cfg), 30.0)
    ms = result.model_stats
    assert ms["total_handled"] == result.run.committed
    assert ms["total_handled"] == sum(ms["per_lp_handled"])
    assert ms["min_handled"] >= 0


def test_remote_fraction_zero_keeps_jobs_local():
    cfg = PholdConfig(n_lps=4, jobs_per_lp=1, remote_fraction=0.0)
    engine = SequentialEngine(PholdModel(cfg), 20.0)
    engine.run()
    for ev in engine.pending:
        assert ev.dst == ev.origin  # jobs never left home


def test_zero_jobs_is_quiet():
    cfg = PholdConfig(n_lps=4, jobs_per_lp=0)
    result = run_sequential(PholdModel(cfg), 10.0)
    assert result.run.committed == 0
