"""Unit tests for the message transports."""

import pytest

from repro.core.event import Event
from repro.core.transport import ImmediateTransport, MailboxTransport, make_transport
from repro.vt.time import EventKey, TIME_HORIZON


def ev(ts, seq=0, dst=0):
    return Event(EventKey(ts, 0, seq), dst, "k")


def test_immediate_delivers_synchronously():
    got = []
    tr = ImmediateTransport(got.append, 2)
    e = ev(1.0)
    tr.deliver(e, 0, 1)
    assert got == [e]
    assert tr.in_flight_count() == 0
    assert tr.min_in_flight_ts() == TIME_HORIZON
    assert tr.flush() == 0


def test_mailbox_defers_cross_pe():
    got = []
    tr = MailboxTransport(got.append, 2)
    e = ev(1.0)
    tr.deliver(e, 0, 1)
    assert got == []
    assert tr.in_flight_count() == 1
    assert tr.min_in_flight_ts() == 1.0
    assert tr.flush() == 1
    assert got == [e]
    assert tr.in_flight_count() == 0


def test_mailbox_local_messages_skip_the_box():
    got = []
    tr = MailboxTransport(got.append, 2)
    e = ev(1.0)
    tr.deliver(e, 1, 1)
    assert got == [e]
    assert tr.in_flight_count() == 0


def test_mailbox_drops_cancelled_and_notifies():
    got, dropped = [], []
    tr = MailboxTransport(got.append, 2)
    tr.on_drop = dropped.append
    e = ev(1.0)
    tr.deliver(e, 0, 1)
    e.cancelled = True
    assert tr.flush() == 0
    assert got == []
    assert dropped == [e]
    assert tr.in_flight_count() == 0


def test_mailbox_min_ignores_cancelled():
    tr = MailboxTransport(lambda e: None, 2)
    a, b = ev(1.0), ev(2.0, seq=1)
    tr.deliver(a, 0, 1)
    tr.deliver(b, 0, 1)
    a.cancelled = True
    assert tr.min_in_flight_ts() == 2.0


def test_mailbox_flush_preserves_per_box_fifo():
    got = []
    tr = MailboxTransport(got.append, 2)
    es = [ev(3.0, seq=0), ev(1.0, seq=1), ev(2.0, seq=2)]
    for e in es:
        tr.deliver(e, 0, 1)
    tr.flush()
    assert got == es  # order of delivery, not timestamp order


def test_make_transport():
    assert isinstance(make_transport("immediate", lambda e: None, 1), ImmediateTransport)
    assert isinstance(make_transport("mailbox", lambda e: None, 1), MailboxTransport)
    with pytest.raises(ValueError):
        make_transport("carrier-pigeon", lambda e: None, 1)


def test_make_transport_error_names_choices():
    # The error must be actionable: name the bad value and every valid one.
    with pytest.raises(ValueError) as excinfo:
        make_transport("carrier-pigeon", lambda e: None, 1)
    message = str(excinfo.value)
    assert "carrier-pigeon" in message
    assert "immediate" in message
    assert "mailbox" in message
