"""Tests for the streaming flight recorder: JSONL sink, loader, and the

cross-process determinism check (the report's Attachment-3 comparison
reconstructed from files instead of in-memory tracers).
"""

import io
import json

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import run_sequential
from repro.core.optimistic import run_optimistic
from repro.core.trace import COMMIT, EXEC, UNDO, Tracer
from repro.models.phold import PholdConfig, PholdModel
from repro.obs.capture import RunCapture
from repro.obs.metrics import MetricsRecorder
from repro.obs.recorder import (
    SCHEMA_VERSION,
    JsonlSink,
    StreamingTracer,
    load_recording,
)

END = 15.0
PHOLD = PholdConfig(n_lps=16, jobs_per_lp=2, remote_fraction=0.7)
OPT = dict(n_pes=4, n_kps=8, batch_size=64, mapping="striped")


def record_run(path, *, parallel, seed=7, trace=True, metrics=True):
    """Record one seeded phold run to ``path``; returns the RunResult."""
    capture = RunCapture(
        metrics_out=path if metrics else None,
        trace_out=path if trace else None,
        meta={"engine": "optimistic" if parallel else "sequential"},
    )
    if parallel:
        result = run_optimistic(
            PholdModel(PHOLD),
            EngineConfig(end_time=END, seed=seed, **OPT),
            tracer=capture.tracer,
            metrics=capture.metrics,
        )
    else:
        result = run_sequential(
            PholdModel(PHOLD),
            END,
            seed=seed,
            tracer=capture.tracer,
            metrics=capture.metrics,
        )
    capture.finalize(result)
    return result


# ----------------------------------------------------------------------
# Sink mechanics.
# ----------------------------------------------------------------------
def test_sink_writes_schema_header_first():
    buf = io.StringIO()
    with JsonlSink(buf) as sink:
        sink.write_header({"engine": "test"})
    lines = buf.getvalue().strip().splitlines()
    doc = json.loads(lines[0])
    assert doc == {"t": "header", "schema": SCHEMA_VERSION, "engine": "test"}


def test_empty_recording_is_loadable():
    buf = io.StringIO()
    JsonlSink(buf).close()
    rec = load_recording(io.StringIO(buf.getvalue()))
    assert rec.records == [] and rec.metrics == [] and rec.stats is None


def test_loader_rejects_future_schema(tmp_path):
    p = tmp_path / "future.jsonl"
    p.write_text(json.dumps({"t": "header", "schema": SCHEMA_VERSION + 1}) + "\n")
    with pytest.raises(ValueError, match="schema"):
        load_recording(p)


def test_loader_rejects_garbage(tmp_path):
    p = tmp_path / "bad.jsonl"
    p.write_text('{"t": "header", "schema": 1}\nnot json\n')
    with pytest.raises(ValueError, match="not valid JSON"):
        load_recording(p)
    p.write_text('{"t": "header", "schema": 1}\n{"t": "mystery"}\n')
    with pytest.raises(ValueError, match="unknown line type"):
        load_recording(p)
    p.write_text('{"t": "trace", "a": "EXEC"}\n')
    with pytest.raises(ValueError, match="missing header"):
        load_recording(p)
    p.write_text("")
    with pytest.raises(ValueError, match="missing header"):
        load_recording(p)


def test_streaming_tracer_counts_match_in_memory(tmp_path):
    stream_path = tmp_path / "stream.jsonl"
    sink = JsonlSink(stream_path)
    streaming = StreamingTracer(sink)
    run_optimistic(
        PholdModel(PHOLD),
        EngineConfig(end_time=END, seed=7, **OPT),
        tracer=streaming,
    )
    sink.close()
    in_memory = Tracer()
    run_optimistic(
        PholdModel(PHOLD),
        EngineConfig(end_time=END, seed=7, **OPT),
        tracer=in_memory,
    )
    assert streaming.counts == in_memory.counts
    rec = load_recording(stream_path)
    assert rec.counts == in_memory.counts
    assert rec.committed_sequence() == in_memory.committed_sequence()


# ----------------------------------------------------------------------
# Round trip and the cross-process determinism check.
# ----------------------------------------------------------------------
def test_round_trip_preserves_stats_and_metrics(tmp_path):
    path = tmp_path / "run.jsonl"
    result = record_run(path, parallel=True)
    rec = load_recording(path)
    assert rec.header["engine"] == "optimistic"
    assert rec.stats == result.run.as_dict()
    assert rec.stats["throttle_final_factor"] == 1.0  # as_dict carries it
    assert sum(s.committed for s in rec.metrics) == result.run.committed
    assert rec.counts[EXEC] == result.run.processed
    assert rec.counts[UNDO] == result.run.events_rolled_back
    assert rec.counts[COMMIT] == result.run.committed


def test_cross_process_determinism_via_files(tmp_path):
    """The §Attachment-3 check through the file format: a seeded

    sequential run and a seeded optimistic run, exported to JSONL,
    reloaded, must commit the identical event sequence.
    """
    seq_path = tmp_path / "seq.jsonl"
    opt_path = tmp_path / "opt.jsonl"
    record_run(seq_path, parallel=False, seed=7)
    record_run(opt_path, parallel=True, seed=7)
    seq = load_recording(seq_path)
    opt = load_recording(opt_path)
    assert opt.counts[UNDO] > 0  # the check below is non-trivial
    assert seq.committed_sequence() == opt.committed_sequence()


def test_different_seeds_yield_different_sequences(tmp_path):
    a = tmp_path / "a.jsonl"
    b = tmp_path / "b.jsonl"
    record_run(a, parallel=True, seed=7)
    record_run(b, parallel=True, seed=8)
    assert load_recording(a).committed_sequence() != load_recording(b).committed_sequence()


def test_metrics_only_recording_refuses_sequence_check(tmp_path):
    path = tmp_path / "metrics.jsonl"
    record_run(path, parallel=True, trace=False)
    rec = load_recording(path)
    assert rec.metrics and not rec.records
    with pytest.raises(ValueError, match="no trace records"):
        rec.committed_sequence()


def test_incomplete_trace_refuses_sequence_check(tmp_path):
    """A recording whose stats promise more commits than the trace holds

    (e.g. a truncated file) must not produce a silently partial sequence.
    """
    path = tmp_path / "run.jsonl"
    record_run(path, parallel=True)
    lines = path.read_text().splitlines()
    kept, dropped_one = [], False
    for line in lines:
        doc = json.loads(line)
        if not dropped_one and doc.get("t") == "trace" and doc["a"] == COMMIT:
            dropped_one = True
            continue
        kept.append(line)
    path.write_text("\n".join(kept) + "\n")
    with pytest.raises(ValueError, match="trimmed"):
        load_recording(path).committed_sequence()


def test_shared_sink_single_header(tmp_path):
    path = tmp_path / "combined.jsonl"
    record_run(path, parallel=True)
    headers = [
        line
        for line in path.read_text().splitlines()
        if json.loads(line).get("t") == "header"
    ]
    assert len(headers) == 1


def test_capture_separate_files(tmp_path):
    m = tmp_path / "metrics.jsonl"
    t = tmp_path / "trace.jsonl"
    capture = RunCapture(metrics_out=m, trace_out=t, meta={"engine": "sequential"})
    result = run_sequential(
        PholdModel(PHOLD), END, tracer=capture.tracer, metrics=capture.metrics
    )
    capture.finalize(result)
    mrec, trec = load_recording(m), load_recording(t)
    assert mrec.metrics and not mrec.records
    assert trec.records and not trec.metrics
    assert mrec.stats == trec.stats == result.run.as_dict()


def test_inactive_capture_is_a_no_op(tmp_path):
    capture = RunCapture()
    assert not capture.active
    assert capture.tracer is None and capture.metrics is None
    capture.finalize(None)  # nothing to close, nothing raised


def test_metrics_recorder_streams_bounded(tmp_path):
    path = tmp_path / "stream.jsonl"
    with JsonlSink(path) as sink:
        rec = MetricsRecorder(sink, keep=False, interval=50)
        run_sequential(PholdModel(PHOLD), END, metrics=rec)
    assert rec.samples == []  # nothing accumulated in memory
    loaded = load_recording(path)
    assert len(loaded.metrics) == len(rec)


# ----------------------------------------------------------------------
# Scheduler-structure counters (lazy cancellation / incremental GVT).
# ----------------------------------------------------------------------
def test_lazy_and_gvt_counters_recorded():
    from repro.obs.metrics import MetricSample

    rec = MetricsRecorder()
    ecfg = EngineConfig(
        end_time=END, n_pes=4, n_kps=8, batch_size=64, seed=7,
        cancellation="lazy", gvt="incremental",
    )
    stressy = PholdConfig(n_lps=16, jobs_per_lp=2, lookahead=0.01,
                          remote_fraction=0.9)
    result = run_optimistic(PholdModel(stressy), ecfg, metrics=rec)
    assert sum(s.lazy_hits for s in rec.samples) == result.run.lazy_reused
    assert (
        sum(s.antimsg_batches for s in rec.samples)
        == result.run.antimsg_batches
    )
    assert (
        sum(s.gvt_incremental_rounds for s in rec.samples)
        == result.run.gvt_incremental_rounds
    )
    assert result.run.lazy_reused > 0  # the workload actually exercised lazy
    # Round trip through the JSON form.
    sample = max(rec.samples, key=lambda s: s.lazy_hits)
    assert MetricSample.from_dict(sample.as_dict()) == sample


def test_metric_sample_loader_defaults_old_recordings():
    from repro.obs.metrics import MetricSample

    rec = MetricsRecorder()
    run_sequential(PholdModel(PHOLD), END, metrics=rec)
    d = rec.samples[0].as_dict()
    for key in ("lazy_hits", "antimsg_batches", "gvt_incremental_rounds"):
        d.pop(key)  # simulate a pre-schema recording
    sample = MetricSample.from_dict(d)
    assert sample.lazy_hits == 0
    assert sample.antimsg_batches == 0
    assert sample.gvt_incremental_rounds == 0
