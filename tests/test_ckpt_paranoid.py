"""--paranoid invariant mode: clean runs pass, corruption is named.

The first half proves the checks are silent on healthy runs of all three
engines (so --paranoid is safe to leave on in CI).  The second half
corrupts kernel state directly and asserts each check raises
InvariantViolation with a diagnostic naming the structure involved.
"""

import pytest

from repro.core.config import EngineConfig
from repro.core.conservative import ConservativeConfig, ConservativeKernel
from repro.core.engine import SequentialEngine
from repro.core.invariants import (
    check_conservative,
    check_optimistic,
    check_sequential,
)
from repro.core.optimistic import TimeWarpKernel
from repro.errors import InvariantViolation
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.model import HotPotatoModel

N = 4
DURATION = 10.0
SEED = 7


def _model() -> HotPotatoModel:
    return HotPotatoModel(
        HotPotatoConfig(n=N, duration=DURATION, injector_fraction=1.0)
    )


def _opt_kernel(**overrides) -> TimeWarpKernel:
    cfg = EngineConfig(
        end_time=DURATION, n_pes=4, n_kps=16, batch_size=16, seed=SEED,
        **overrides,
    )
    return TimeWarpKernel(_model(), cfg)


def test_sequential_paranoid_run_clean():
    res = SequentialEngine(_model(), DURATION, seed=SEED, paranoid=True).run()
    assert res.run.committed > 0


def test_optimistic_paranoid_run_clean():
    res = _opt_kernel(paranoid=True).run()
    assert res.run.committed > 0


@pytest.mark.parametrize("sync", ["yawns", "null"])
def test_conservative_paranoid_run_clean(sync):
    cfg = ConservativeConfig(
        end_time=DURATION, n_pes=4, sync=sync, seed=SEED, paranoid=True
    )
    res = ConservativeKernel(_model(), cfg).run()
    assert res.run.committed > 0


def test_paranoid_matches_unparanoid_commits():
    """The checks observe, never perturb: committed runs are identical."""
    plain = _opt_kernel().run()
    checked = _opt_kernel(paranoid=True).run()
    assert checked.model_stats == plain.model_stats
    assert checked.run.committed == plain.run.committed


def test_gvt_regression_detected():
    kernel = _opt_kernel()
    kernel.run()
    check_optimistic(kernel, kernel.gvt)  # healthy post-run state passes
    with pytest.raises(InvariantViolation, match="GVT moved backwards"):
        check_optimistic(kernel, kernel.gvt + 1.0)


def test_processed_order_corruption_names_the_kp():
    kernel = _opt_kernel()
    kernel.run()
    # Fabricate an out-of-order processed list on one KP from two
    # distinct-key post-run pending events.
    events = []
    for pe in kernel.pes:
        for ev in pe.pending:
            if not events or ev.key != events[-1].key:
                events.append(ev)
            if len(events) == 2:
                break
        if len(events) == 2:
            break
    assert len(events) == 2, "post-run state held too few events to corrupt"
    earlier, later = sorted(events, key=lambda e: e.key)
    kp = kernel.kps[0]
    kp.processed[:] = [later, earlier]
    with pytest.raises(InvariantViolation, match=r"KP \d+ .*out of key order"):
        check_optimistic(kernel, 0.0)


def test_heap_order_corruption_detected():
    engine = SequentialEngine(_model(), DURATION, seed=SEED)
    engine.run()
    heap = engine.pending._heap
    assert len(heap) >= 2, "post-run queue too small to corrupt"
    heap[0], heap[-1] = heap[-1], heap[0]
    with pytest.raises(InvariantViolation, match="heap order violated"):
        check_sequential(engine, DURATION)


def test_conservation_violation_names_the_router():
    cfg = ConservativeConfig(end_time=DURATION, n_pes=4, seed=SEED)
    kernel = ConservativeKernel(_model(), cfg)
    kernel.run()
    check_conservative(kernel)  # healthy post-run state passes
    kernel.lps[3].stats.delivered = -1
    with pytest.raises(
        InvariantViolation, match="packet conservation violated"
    ):
        check_conservative(kernel)
