"""M/M/1 tandem queue: engine equivalence plus closed-form validation."""

import pytest

from repro.core.config import EngineConfig
from repro.core.conservative import ConservativeConfig, run_conservative
from repro.core.engine import run_sequential
from repro.core.optimistic import run_optimistic
from repro.errors import ConfigurationError
from repro.models.mm1 import MM1Config, MM1Model

END = 4000.0
CFG = MM1Config(stations=1, arrival_rate=0.5, service_rate=1.0)


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(stations=0),
        dict(arrival_rate=0.0),
        dict(service_rate=-1.0),
        dict(arrival_rate=1.0, service_rate=1.0),  # unstable
    ],
)
def test_config_validation(kwargs):
    with pytest.raises(ConfigurationError):
        MM1Config(**kwargs)


def test_theory_properties():
    cfg = MM1Config(arrival_rate=0.5, service_rate=1.0)
    assert cfg.rho == 0.5
    assert cfg.expected_sojourn == pytest.approx(2.0)
    assert cfg.expected_in_system == pytest.approx(1.0)


@pytest.fixture(scope="module")
def long_run():
    return run_sequential(MM1Model(CFG), END, seed=17)


def test_job_conservation(long_run):
    ms = long_run.model_stats
    # Generated jobs are absorbed or still somewhere in the pipeline.
    in_pipeline = sum(dict(s)["depth_now"] for s in ms["per_station"])
    assert 0 <= ms["generated"] - ms["absorbed"] - in_pipeline <= 4
    # (up to a few jobs in transfer flight between LPs)


def test_utilisation_matches_rho(long_run):
    station = dict(long_run.model_stats["per_station"][0])
    utilisation = station["busy_area"] / station["last_change"]
    assert utilisation == pytest.approx(CFG.rho, rel=0.08)


def test_mean_number_in_system_matches_theory(long_run):
    station = dict(long_run.model_stats["per_station"][0])
    L = station["area"] / station["last_change"]
    assert L == pytest.approx(CFG.expected_in_system, rel=0.15)


def test_littles_law(long_run):
    # L = λ_effective · W, with W from per-job sojourn (minus the two
    # fixed transfer hops) and λ from the completion count.
    ms = long_run.model_stats
    station = dict(ms["per_station"][0])
    horizon = station["last_change"]
    L = station["area"] / horizon
    lam_eff = station["completed"] / horizon
    W = ms["mean_total_sojourn"] - 2 * 0.05  # source->queue + queue->sink
    assert L == pytest.approx(lam_eff * W, rel=0.1)


def test_sojourn_matches_theory(long_run):
    W = long_run.model_stats["mean_total_sojourn"] - 2 * 0.05
    assert W == pytest.approx(CFG.expected_sojourn, rel=0.15)


def test_optimistic_matches_sequential():
    # Random mapping scatters the pipeline across PEs so upstream stages
    # run after downstream ones — thousands of genuine rollbacks.
    tandem = MM1Config(stations=3, arrival_rate=0.5, service_rate=1.0)
    oracle = run_sequential(MM1Model(tandem), 500.0, seed=1).model_stats
    cfg = EngineConfig(
        end_time=500.0, n_pes=3, n_kps=3, batch_size=64, mapping="random", seed=1
    )
    result = run_optimistic(MM1Model(tandem), cfg)
    assert result.run.events_rolled_back > 0
    assert result.model_stats == oracle


def test_conservative_matches_sequential():
    oracle = run_sequential(MM1Model(CFG), 500.0, seed=3).model_stats
    for sync in ("yawns", "null"):
        cfg = ConservativeConfig(
            end_time=500.0, n_pes=3, sync=sync, mapping="striped", seed=3
        )
        result = run_conservative(MM1Model(CFG), cfg)
        assert result.model_stats == oracle


def test_tandem_stations_all_process():
    cfg = MM1Config(stations=3, arrival_rate=0.4, service_rate=1.0)
    result = run_sequential(MM1Model(cfg), 1000.0, seed=5)
    for station in result.model_stats["per_station"]:
        assert dict(station)["completed"] > 100


def test_higher_load_longer_queues():
    results = {}
    for lam in (0.3, 0.8):
        cfg = MM1Config(arrival_rate=lam, service_rate=1.0)
        r = run_sequential(MM1Model(cfg), 2000.0, seed=9)
        station = dict(r.model_stats["per_station"][0])
        results[lam] = station["area"] / station["last_change"]
    assert results[0.8] > 2 * results[0.3]
