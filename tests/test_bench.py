"""Tests for the benchmark harness: schema 2, percentiles, --compare."""

import json

import pytest

from repro.bench.harness import (
    SCHEMA_VERSION,
    _quantile,
    _upgrade,
    compare_files,
    load_trajectory,
    run_suite,
    write_trajectory,
)
from repro.bench.suites import SUITES
from repro.bench.__main__ import SMOKE_GOLDEN, main

BY_NAME = {s.name: s for s in SUITES}


# ----------------------------------------------------------------------
# Quantiles.
# ----------------------------------------------------------------------
def test_quantile_interpolates():
    walls = [1.0, 2.0, 3.0, 4.0]
    assert _quantile(walls, 0.0) == 1.0
    assert _quantile(walls, 1.0) == 4.0
    assert _quantile(walls, 0.5) == pytest.approx(2.5)
    assert _quantile([5.0], 0.95) == 5.0
    assert _quantile([], 0.5) == 0.0


# ----------------------------------------------------------------------
# Schema upgrade.
# ----------------------------------------------------------------------
def _schema1_doc():
    return {
        "schema": 1,
        "suites": {
            "opt-phold": {
                "engine": "optimistic",
                "committed_per_sec": 1000.0,
                "wall_seconds": [0.5, 0.4, 0.6],
            },
            "seq-phold": {
                "engine": "sequential",
                "committed_per_sec": 2000.0,
                "wall_seconds": [0.2],
            },
        },
    }


def test_upgrade_fills_schema2_fields():
    doc = _upgrade(_schema1_doc())
    opt = doc["suites"]["opt-phold"]
    assert opt["queue_impl"] == "heap"
    assert opt["cancellation"] == "aggressive"
    assert opt["p50_seconds"] == pytest.approx(0.5)
    seq = doc["suites"]["seq-phold"]
    assert seq["queue_impl"] == "n/a"
    assert seq["cancellation"] == "n/a"
    assert seq["p95_seconds"] == pytest.approx(0.2)


def test_upgrade_passes_schema2_through():
    doc = {"schema": 2, "suites": {"opt-phold": {"queue_impl": "ladder"}}}
    assert _upgrade(doc)["suites"]["opt-phold"]["queue_impl"] == "ladder"


def test_upgrade_rejects_future_schema():
    with pytest.raises(ValueError):
        _upgrade({"schema": SCHEMA_VERSION + 1})


# ----------------------------------------------------------------------
# run_suite (smoke scale).
# ----------------------------------------------------------------------
def test_run_suite_records_schema2_fields():
    res = run_suite(BY_NAME["opt-phold"], repeats=2, smoke=True,
                    queue="ladder", cancellation="lazy")
    assert res.queue_impl == "ladder"
    assert res.cancellation == "lazy"
    assert res.committed == SMOKE_GOLDEN["opt-phold"]
    assert res.best_seconds <= res.p50_seconds <= res.p95_seconds
    assert len(res.wall_seconds) == 2


def test_run_suite_non_optimistic_marks_na():
    res = run_suite(BY_NAME["seq-phold"], repeats=1, smoke=True,
                    queue="ladder", cancellation="lazy")
    assert res.queue_impl == "n/a"
    assert res.cancellation == "n/a"


@pytest.mark.parametrize("name", ["opt-phold-stress", "opt-hotpotato-stress"])
def test_stress_suites_commit_identically_across_modes(name):
    suite = BY_NAME[name]
    counts = {
        (q, c): suite.run(True, queue=q, cancellation=c).run.committed
        for q in ("heap", "ladder")
        for c in ("aggressive", "lazy")
    }
    assert len(set(counts.values())) == 1, counts
    assert counts[("heap", "aggressive")] == SMOKE_GOLDEN[name]


def test_stress_suites_roll_back_heavily():
    run = BY_NAME["opt-phold-stress"].run(True).run
    assert run.events_rolled_back > run.committed / 2


# ----------------------------------------------------------------------
# write_trajectory / load_trajectory round trip.
# ----------------------------------------------------------------------
def _write(tmp_path, name, results):
    path = tmp_path / name
    write_trajectory(path, results, {}, None, 0.8)
    return path


def test_trajectory_round_trip(tmp_path):
    res = run_suite(BY_NAME["opt-phold"], repeats=1, smoke=True)
    path = _write(tmp_path, "BENCH_0.json", [res])
    doc = load_trajectory(path)
    assert doc["schema"] == SCHEMA_VERSION
    suite = doc["suites"]["opt-phold"]
    assert suite["queue_impl"] == "heap"
    assert suite["cancellation"] == "aggressive"
    assert "p50_seconds" in suite and "p95_seconds" in suite


# ----------------------------------------------------------------------
# compare_files / CLI --compare.
# ----------------------------------------------------------------------
def _fake_trajectory(tmp_path, name, rates):
    doc = {
        "schema": 2,
        "suites": {
            suite: {
                "engine": "optimistic",
                "committed_per_sec": rate,
                "queue_impl": "heap",
                "cancellation": "aggressive",
                "wall_seconds": [],
            }
            for suite, rate in rates.items()
        },
    }
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return path


def test_compare_files_counts_regressions(tmp_path):
    a = _fake_trajectory(tmp_path, "A.json", {"x": 1000.0, "y": 1000.0})
    b = _fake_trajectory(tmp_path, "B.json", {"x": 500.0, "y": 990.0})
    lines = []
    assert compare_files(a, b, 0.8, report=lines.append) == 1
    assert any("REGRESSION" in ln for ln in lines)


def test_compare_files_ignores_unshared_suites(tmp_path):
    a = _fake_trajectory(tmp_path, "A.json", {"x": 1000.0})
    b = _fake_trajectory(tmp_path, "B.json", {"x": 1000.0, "new": 1.0})
    assert compare_files(a, b, 0.8, report=lambda _: None) == 0


def test_cli_compare_exit_codes(tmp_path):
    a = _fake_trajectory(tmp_path, "A.json", {"x": 1000.0})
    b = _fake_trajectory(tmp_path, "B.json", {"x": 100.0})
    assert main(["--compare", str(a), str(b)]) == 1
    assert main(["--compare", str(a), str(a)]) == 0
    assert main(["--compare", str(a), str(tmp_path / "missing.json")]) == 2
