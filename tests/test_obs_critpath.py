"""Tests for critical-path analysis: structure, bounds and determinism."""

import json

from repro.core.config import EngineConfig
from repro.core.engine import run_sequential
from repro.core.optimistic import run_optimistic
from repro.core.trace import Tracer
from repro.models.phold import PholdConfig, PholdModel
from repro.obs.critpath import critical_path

END = 15.0
PHOLD = PholdConfig(n_lps=16, jobs_per_lp=2, remote_fraction=0.7)


def test_empty_trace():
    report = critical_path([])
    assert report.events == 0
    assert report.path_length == 0
    assert report.witness == ()


def test_single_lp_chain_is_fully_sequential():
    # Three events at one LP: pure state dependency, no parallelism.
    commits = [(1.0, 0, i, 0, "m") for i in range(3)]
    report = critical_path(commits)
    assert report.path_length == 3
    assert report.speedup_bound == 1.0
    assert report.lp_slack == {0: 0}


def test_independent_lps_are_parallel():
    # Two LPs that never communicate: path length is one LP's chain.
    commits = sorted(
        [(float(i + 1), lp, i, lp, "m") for lp in (0, 1) for i in range(4)]
    )
    report = critical_path(commits)
    assert report.events == 8
    assert report.path_length == 4
    assert report.speedup_bound == 2.0
    assert report.lp_heights == {0: 4, 1: 4}


def test_cross_lp_send_extends_the_path():
    # lp0 executes at ts 1 and 2; its send lands on lp1 at ts 3.  The
    # chain through the send is longer than lp1's own history.
    commits = [
        (1.0, 0, 0, 0, "m"),
        (2.0, 0, 1, 0, "m"),
        (3.0, 0, 2, 1, "m"),
    ]
    report = critical_path(commits)
    assert report.path_length == 3
    # Witness walks lp0, lp0, lp1.
    assert [lp for _d, lp, _ts in report.witness] == [0, 0, 1]


def test_structural_invariants_on_a_real_run():
    tracer = Tracer()
    result = run_optimistic(
        PholdModel(PHOLD),
        EngineConfig(end_time=END, n_pes=4, n_kps=8, batch_size=64,
                     mapping="striped"),
        tracer=tracer,
    )
    report = critical_path(tracer.committed_sequence())
    assert report.events == result.run.committed
    assert 1 <= report.path_length <= report.events
    assert report.speedup_bound >= 1.0
    assert len(report.witness) == report.path_length
    # Witness depths are exactly 1..L and its timestamps never decrease.
    assert [d for d, _lp, _ts in report.witness] == list(
        range(1, report.path_length + 1)
    )
    ts = [t for _d, _lp, t in report.witness]
    assert ts == sorted(ts)
    assert all(slack >= 0 for slack in report.lp_slack.values())
    assert max(report.lp_heights.values()) == report.path_length
    assert sum(report.path_lp_events.values()) == report.path_length


def test_engine_independence_and_byte_determinism():
    """The report is a function of the trace: sequential and optimistic
    runs of the same model yield byte-identical JSON."""
    seq_tracer = Tracer()
    run_sequential(PholdModel(PHOLD), END, tracer=seq_tracer)
    opt_tracer = Tracer()
    run_optimistic(
        PholdModel(PHOLD),
        EngineConfig(end_time=END, n_pes=4, n_kps=8, batch_size=64,
                     mapping="striped"),
        tracer=opt_tracer,
    )
    a = critical_path(seq_tracer.committed_sequence())
    b = critical_path(opt_tracer.committed_sequence())
    assert a == b
    dumps = lambda r: json.dumps(  # noqa: E731
        r.as_dict(), sort_keys=True, separators=(",", ":")
    )
    assert dumps(a) == dumps(b)
    # And re-analysis of the same trace is self-identical (no hidden
    # iteration-order dependence).
    assert dumps(critical_path(seq_tracer.committed_sequence())) == dumps(a)


def test_as_dict_witness_trimming():
    commits = [(float(i + 1), 0, i, 0, "m") for i in range(40)]
    report = critical_path(commits)
    d = report.as_dict(max_witness=10)
    assert len(d["witness"]) == 10
    assert d["witness_trimmed"] == 30
    # Both ends survive the trim.
    assert d["witness"][0][0] == 1
    assert d["witness"][-1][0] == 40
    full = report.as_dict(max_witness=None)
    assert len(full["witness"]) == 40
    assert full["witness_trimmed"] == 0
