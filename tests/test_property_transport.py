"""Property test: MailboxTransport accounting under random interleavings.

The optimistic kernel's GVT safety rests on two transport promises:

* ``min_in_flight_ts()`` is a lower bound on every undelivered,
  non-cancelled message's timestamp (a message below the GVT estimate
  hiding in a mailbox would let GVT pass it and corrupt fossil
  collection);
* ``in_flight_count()`` counts exactly the boxed messages (the
  synchronous GVT manager uses it to decide when the system is quiet).

We drive a MailboxTransport with a random interleaving of cross-PE
deliveries, local deliveries, cancellations and flushes, mirroring every
step against a plain-Python model, and check both accountors after every
operation — plus per-box FIFO delivery order at the end.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.event import Event
from repro.core.transport import MailboxTransport
from repro.vt.time import EventKey, TIME_HORIZON

N_PES = 3

#: One operation: ("deliver", ts, src_pe) | ("cancel", index) | ("flush",)
_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("deliver"),
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            st.integers(min_value=0, max_value=N_PES - 1),
        ),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=200)),
        st.tuples(st.just("flush")),
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=200, deadline=None)
@given(ops=_ops)
def test_mailbox_accounting_matches_model(ops):
    delivered = []
    tr = MailboxTransport(delivered.append, N_PES)
    dropped = []
    tr.on_drop = dropped.append

    dst_pe = N_PES - 1  # all deliveries target the last PE's boxes
    in_flight: list[Event] = []  # model: boxed events in delivery order
    sent: list[Event] = []  # every event ever delivered cross-PE
    expect_delivered: list[Event] = []
    seq = 0

    for op in ops:
        if op[0] == "deliver":
            _, ts, src_pe = op
            e = Event(EventKey(ts, 0, seq), 0, "k")
            seq += 1
            tr.deliver(e, src_pe, dst_pe)
            if src_pe == dst_pe:
                expect_delivered.append(e)  # local: synchronous handoff
            else:
                in_flight.append(e)
                sent.append(e)
        elif op[0] == "cancel":
            _, idx = op
            if sent:
                sent[idx % len(sent)].cancelled = True
        else:
            tr.flush()
            expect_delivered.extend(e for e in in_flight if not e.cancelled)
            in_flight.clear()

        live = [e for e in in_flight if not e.cancelled]
        expect_min = min((e.key.ts for e in live), default=TIME_HORIZON)
        assert tr.min_in_flight_ts() == expect_min
        assert tr.in_flight_count() == len(in_flight)

    # Everything that reached the handler did so in deliver order (the
    # mailboxes are per-source FIFO and we used interleaved sources, so
    # compare as multisets per source; with one dst the global order of
    # same-source events must hold).
    assert [id(e) for e in delivered] == [id(e) for e in expect_delivered]
    # Cancelled boxed events were dropped via on_drop, never delivered.
    assert all(e.cancelled for e in dropped)
    assert not any(e in delivered for e in dropped)
