"""Property test: MailboxTransport accounting under random interleavings.

The optimistic kernel's GVT safety rests on two transport promises:

* ``min_in_flight_ts()`` is a lower bound on every undelivered,
  non-cancelled message's timestamp (a message below the GVT estimate
  hiding in a mailbox would let GVT pass it and corrupt fossil
  collection);
* ``in_flight_count()`` counts exactly the boxed messages (the
  synchronous GVT manager uses it to decide when the system is quiet).

We drive a MailboxTransport with a random interleaving of cross-PE
deliveries, local deliveries, cancellations and flushes, mirroring every
step against a plain-Python model, and check both accountors after every
operation — plus per-box FIFO delivery order at the end.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.event import Event
from repro.core.transport import MailboxTransport
from repro.vt.time import EventKey, TIME_HORIZON

N_PES = 3

#: One operation: ("deliver", ts, src_pe) | ("cancel", index) | ("flush",)
_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("deliver"),
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            st.integers(min_value=0, max_value=N_PES - 1),
        ),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=200)),
        st.tuples(st.just("flush")),
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=200, deadline=None)
@given(ops=_ops)
def test_mailbox_accounting_matches_model(ops):
    delivered = []
    tr = MailboxTransport(delivered.append, N_PES)
    dropped = []
    tr.on_drop = dropped.append

    dst_pe = N_PES - 1  # all deliveries target the last PE's boxes
    in_flight: list[Event] = []  # model: boxed events in delivery order
    sent: list[Event] = []  # every event ever delivered cross-PE
    expect_delivered: list[Event] = []
    seq = 0

    for op in ops:
        if op[0] == "deliver":
            _, ts, src_pe = op
            e = Event(EventKey(ts, 0, seq), 0, "k")
            seq += 1
            tr.deliver(e, src_pe, dst_pe)
            if src_pe == dst_pe:
                expect_delivered.append(e)  # local: synchronous handoff
            else:
                in_flight.append(e)
                sent.append(e)
        elif op[0] == "cancel":
            _, idx = op
            if sent:
                sent[idx % len(sent)].cancelled = True
        else:
            tr.flush()
            expect_delivered.extend(e for e in in_flight if not e.cancelled)
            in_flight.clear()

        live = [e for e in in_flight if not e.cancelled]
        expect_min = min((e.key.ts for e in live), default=TIME_HORIZON)
        assert tr.min_in_flight_ts() == expect_min
        assert tr.in_flight_count() == len(in_flight)

    # Everything that reached the handler did so in deliver order (the
    # mailboxes are per-source FIFO and we used interleaved sources, so
    # compare as multisets per source; with one dst the global order of
    # same-source events must hold).
    assert [id(e) for e in delivered] == [id(e) for e in expect_delivered]
    # Cancelled boxed events were dropped via on_drop, never delivered.
    assert all(e.cancelled for e in dropped)
    assert not any(e in delivered for e in dropped)


#: Multi-producer schedule: ("deliver", src, dst, ts) | ("flush",).
_mp_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("deliver"),
            st.integers(min_value=0, max_value=N_PES - 1),
            st.integers(min_value=0, max_value=N_PES - 1),
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        ),
        st.tuples(st.just("flush")),
    ),
    min_size=1,
    max_size=80,
)


@settings(max_examples=200, deadline=None)
@given(ops=_mp_ops)
def test_mailbox_multi_producer_flush_order(ops):
    """The documented multi-producer contract (transport.py):

    per destination, flushed delivery order == global arrival order of
    that destination's messages, across arbitrary interleavings of
    source PEs and flush boundaries.  Per-(src, dst) FIFO follows as a
    corollary but is asserted independently, because it is the property
    the anti-after-positive cancellation argument actually uses.
    """
    delivered = []
    tr = MailboxTransport(delivered.append, N_PES)
    #: Arrival order of *boxed* (cross-PE) messages per destination —
    #: local sends bypass the mailbox synchronously, so the ordering
    #: contract is scoped to what flush actually delivers.
    boxed_by_dst = {d: [] for d in range(N_PES)}
    local = set()
    seq = 0
    for op in ops:
        if op[0] == "deliver":
            _, src, dst, ts = op
            e = Event(EventKey(ts, src, seq), dst, "k")
            seq += 1
            tr.deliver(e, src, dst)
            if src == dst:
                local.add(id(e))
            else:
                boxed_by_dst[dst].append(e)
        else:
            tr.flush()
    tr.flush()
    assert tr.in_flight_count() == 0

    # Per destination: flushed delivery order is arrival order.
    for dst in range(N_PES):
        got = [
            id(e) for e in delivered if e.dst == dst and id(e) not in local
        ]
        assert got == [id(e) for e in boxed_by_dst[dst]]
    # Per (src, dst) pair: FIFO by send sequence (local pairs trivially —
    # synchronous — and cross pairs through the box).
    for src in range(N_PES):
        for dst in range(N_PES):
            seqs = [
                e.key.seq
                for e in delivered
                if e.dst == dst and e.key.origin == src
            ]
            assert seqs == sorted(seqs)


@settings(max_examples=200, deadline=None)
@given(ops=_mp_ops)
def test_mailbox_twin_of_immediate_transport(ops):
    """Randomized twin test: the mailbox is delivery-equivalent to the
    immediate transport.

    The same schedule runs through both transports; after a final flush
    the mailbox must have handed over exactly the immediate transport's
    deliveries (buffering may only *defer*, never drop or duplicate) and
    preserved every (src, dst) pair's FIFO order.  This is the
    cross-transport invariant the engines' schedule-invariance rests on:
    swapping the transport changes *when* a message arrives, never
    *whether* — boxed cross-PE messages may arrive after local ones the
    immediate transport would have delivered later, which Time Warp
    absorbs by timestamp order downstream.
    """
    from repro.core.transport import ImmediateTransport

    mb_delivered, im_delivered = [], []
    mb = MailboxTransport(mb_delivered.append, N_PES)
    im = ImmediateTransport(im_delivered.append, N_PES)
    seq = 0
    for op in ops:
        if op[0] == "deliver":
            _, src, dst, ts = op
            key = EventKey(ts, src, seq)
            seq += 1
            mb.deliver(Event(key, dst, "k"), src, dst)
            im.deliver(Event(key, dst, "k"), src, dst)
        else:
            mb.flush()
    mb.flush()

    assert mb.in_flight_count() == 0
    assert mb.min_in_flight_ts() == TIME_HORIZON
    # Same multiset of deliveries per destination...
    for dst in range(N_PES):
        mb_keys = sorted(e.key for e in mb_delivered if e.dst == dst)
        im_keys = sorted(e.key for e in im_delivered if e.dst == dst)
        assert mb_keys == im_keys
    # ...and identical per-(src, dst) FIFO sequences.
    for src in range(N_PES):
        for dst in range(N_PES):
            mb_seq = [
                e.key.seq
                for e in mb_delivered
                if e.dst == dst and e.key.origin == src
            ]
            im_seq = [
                e.key.seq
                for e in im_delivered
                if e.dst == dst and e.key.origin == src
            ]
            assert mb_seq == im_seq
