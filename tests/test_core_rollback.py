"""Unit tests for the rollback strategies (reverse computation vs copy)."""

import pytest

from repro.core.event import Event
from repro.core.lp import LogicalProcess
from repro.core.rollback import ReverseComputation, StateSaving, make_strategy
from repro.rng.streams import ReversibleStream
from repro.vt.time import EventKey


class CounterLP(LogicalProcess):
    """Minimal LP: adds event data to a counter and draws once."""

    def __init__(self):
        super().__init__(0)
        self.state = [0]

    def forward(self, event):
        self.state[0] += event.data["add"]
        self.rng.unif()

    def reverse(self, event):
        self.state[0] -= event.data["add"]


def make_lp():
    lp = CounterLP()
    lp.bind(ReversibleStream(99), lambda src, ev: None)
    return lp


def run_one(lp, strategy, add=5):
    ev = Event(EventKey(1.0, 0, 0), 0, "k", {"add": add})
    ev.prev_send_seq = lp.send_seq
    strategy.before(lp, ev)
    before_count = lp.rng.count
    lp.forward(ev)
    ev.rng_draws = lp.rng.count - before_count
    return ev


@pytest.mark.parametrize("name", ["reverse", "copy"])
def test_undo_restores_state_and_rng(name):
    strategy = make_strategy(name)
    lp = make_lp()
    baseline = (lp.state[0], lp.rng.checkpoint(), lp.send_seq)
    ev = run_one(lp, strategy)
    assert lp.state[0] == 5
    strategy.undo(lp, ev)
    assert (lp.state[0], lp.rng.checkpoint(), lp.send_seq) == baseline


@pytest.mark.parametrize("name", ["reverse", "copy"])
def test_undo_then_redo_is_identical(name):
    strategy = make_strategy(name)
    lp = make_lp()
    ev = run_one(lp, strategy)
    after = (lp.state[0], lp.rng.checkpoint())
    strategy.undo(lp, ev)
    ev2 = run_one(lp, strategy)
    assert (lp.state[0], lp.rng.checkpoint()) == after
    assert ev2.rng_draws == 1


def test_reverse_computation_stores_no_snapshot():
    strategy = ReverseComputation()
    lp = make_lp()
    ev = run_one(lp, strategy)
    assert ev.snapshot is None


def test_state_saving_stores_and_clears_snapshot():
    strategy = StateSaving()
    lp = make_lp()
    ev = run_one(lp, strategy)
    assert ev.snapshot is not None
    strategy.undo(lp, ev)
    assert ev.snapshot is None


def test_state_saving_snapshot_is_a_copy():
    strategy = StateSaving()
    lp = make_lp()
    ev = Event(EventKey(1.0, 0, 0), 0, "k", {"add": 1})
    strategy.before(lp, ev)
    lp.state[0] = 777  # mutate after snapshot
    state, _ = ev.snapshot
    assert state[0] == 0


def test_make_strategy_unknown():
    with pytest.raises(ValueError):
        make_strategy("nope")


def test_strategy_names():
    assert make_strategy("reverse").name == "reverse"
    assert make_strategy("copy").name == "copy"
