"""Tests for rollback-chain reconstruction and recording diffs."""

from repro.core.trace import COMMIT, EXEC, UNDO, TraceRecord
from repro.obs.forensics import chain_summary, diff_recordings, rollback_chains
from repro.obs.metrics import MetricSample
from repro.obs.recorder import RunRecording


def rec_of(actions, stats=None, metrics=()):
    """Build a RunRecording from (action, ts, dst) triples."""
    records = [
        TraceRecord(action=a, ts=ts, origin=0, seq=i, dst=dst, kind="K")
        for i, (a, ts, dst) in enumerate(actions)
    ]
    return RunRecording({"schema": 1}, records, list(metrics), stats)


def test_chains_reconstructed_from_consecutive_undos():
    rec = rec_of(
        [
            (EXEC, 1.0, 0),
            (EXEC, 2.0, 1),
            (UNDO, 2.0, 1),   # chain 1: two events, two LPs
            (UNDO, 1.5, 0),
            (EXEC, 1.2, 0),   # resumption front
            (EXEC, 3.0, 1),
            (UNDO, 3.0, 1),   # chain 2: one event, trace ends inside
        ]
    )
    chains = rollback_chains(rec)
    assert len(chains) == 2
    first, second = chains
    assert (first.length, first.lp_spread) == (2, 2)
    assert (first.min_ts, first.max_ts) == (1.5, 2.0)
    assert first.resumed_lp == 0
    assert (second.length, second.resumed_lp) == (1, -1)

    summary = chain_summary(chains)
    assert summary["chains"] == 2
    assert summary["events_undone"] == 3
    assert summary["max_length"] == 2
    assert summary["multi_lp_chains"] == 1


def test_chain_summary_empty():
    assert chain_summary([])["chains"] == 0


def test_diff_equal_sequences_is_equivalent():
    actions = [(EXEC, 1.0, 0), (COMMIT, 1.0, 0)]
    a = rec_of(actions, stats={"engine": "sequential", "committed": 1})
    b = rec_of(actions, stats={"engine": "optimistic", "committed": 1})
    report = diff_recordings(a, b)
    assert report["sequences"] == "equal"
    assert report["equivalent"]
    # engine differs but is engine-dependent, not an invariant mismatch
    assert report["field_mismatches"]["invariant"] == []
    assert "engine" in report["field_mismatches"]["engine_dependent"]


def test_diff_finds_first_divergence():
    a = rec_of([(COMMIT, 1.0, 0), (COMMIT, 2.0, 0)], stats={"committed": 2})
    b = rec_of([(COMMIT, 1.0, 0), (COMMIT, 2.5, 0)], stats={"committed": 2})
    report = diff_recordings(a, b)
    assert report["sequences"] == "different"
    assert not report["equivalent"]
    idx, ta, tb = report["first_divergence"]
    assert idx == 1 and ta[0] == 2.0 and tb[0] == 2.5


def test_diff_without_traces_falls_back_to_invariants():
    sample = MetricSample(
        round=0, gvt=1.0, committed=5, processed=5, rolled_back=0,
        rollbacks=0, stragglers=0, fossil_collected=5, pending=0,
        processed_depth=0, throttle=1.0, pool_hit_rate=0.0,
    )
    a = rec_of([], stats={"committed": 5, "engine": "sequential"},
               metrics=[sample])
    b = rec_of([], stats={"committed": 5, "engine": "optimistic"},
               metrics=[sample])
    report = diff_recordings(a, b)
    assert report["sequences"] == "unavailable"
    assert report["equivalent"]
    c = rec_of([], stats={"committed": 6, "engine": "optimistic"},
               metrics=[sample])
    report = diff_recordings(a, c)
    assert not report["equivalent"]
    assert report["field_mismatches"]["invariant"] == ["committed"]


def test_thrash_by_kp_sums_metric_deltas():
    s1 = MetricSample(
        round=0, gvt=1.0, committed=0, processed=0, rolled_back=3,
        rollbacks=1, stragglers=1, fossil_collected=0, pending=0,
        processed_depth=0, throttle=1.0, pool_hit_rate=0.0,
        kp_rolled_back={0: 2, 3: 1},
    )
    s2 = MetricSample(
        round=1, gvt=2.0, committed=0, processed=0, rolled_back=2,
        rollbacks=1, stragglers=1, fossil_collected=0, pending=0,
        processed_depth=0, throttle=1.0, pool_hit_rate=0.0,
        kp_rolled_back={3: 2},
    )
    rec = rec_of([], metrics=[s1, s2])
    assert rec.thrash_by_kp() == {0: 2, 3: 3}
