"""System-level invariants of the hot-potato network (DESIGN.md 3, 4).

Packet conservation, the bufferless guarantee, absorption-mode semantics,
O(N) growth, and the theoretical property that Running packets are never
knocked off their home-run path except while turning.
"""

import pytest

from repro.core.engine import SequentialEngine
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.model import HotPotatoModel
from repro.hotpotato.router import ARRIVE, ROUTE


def run_engine(cfg, seed=1):
    engine = SequentialEngine(HotPotatoModel(cfg), cfg.duration, seed=seed)
    result = engine.run()
    return engine, result


@pytest.mark.parametrize("frac", [0.0, 0.5, 1.0])
def test_packet_conservation(frac):
    cfg = HotPotatoConfig(n=6, duration=40.0, injector_fraction=frac)
    engine, result = run_engine(cfg)
    ms = result.model_stats
    in_flight = sum(1 for ev in engine.pending if ev.kind in (ARRIVE, ROUTE))
    total_in = ms["initial_packets"] + ms["injected"]
    assert total_in == ms["delivered"] + in_flight


def test_static_mode_drains_the_network():
    # injector_fraction=0 with full fill is the one-shot/static analysis:
    # every seeded packet must eventually be delivered.
    cfg = HotPotatoConfig(n=6, duration=200.0, injector_fraction=0.0)
    engine, result = run_engine(cfg)
    ms = result.model_stats
    assert ms["injected"] == 0
    assert ms["delivered"] == ms["initial_packets"] == 144
    in_flight = sum(1 for ev in engine.pending if ev.kind in (ARRIVE, ROUTE))
    assert in_flight == 0


def test_bufferless_invariant_no_overflow_routes():
    # A router never sees more packets than links in any real (committed)
    # timeline: the overflow counter stays zero across a busy run.
    cfg = HotPotatoConfig(n=8, duration=60.0, injector_fraction=1.0)
    _, result = run_engine(cfg)
    assert result.model_stats["delivered"] > 0
    assert result.model_stats["overflow_routes"] == 0


def test_running_never_demoted_off_turn():
    # "a running packet cannot be deflected from its path except while it
    # is turning" (§1.2.5) — holds in every configuration we run.
    for frac in (0.5, 1.0):
        cfg = HotPotatoConfig(n=8, duration=80.0, injector_fraction=frac)
        _, result = run_engine(cfg)
        assert result.model_stats["running_deflections_off_turn"] == 0


def test_absorb_sleeping_false_still_delivers_upgraded_packets():
    cfg = HotPotatoConfig(n=6, duration=80.0, injector_fraction=0.5, absorb_sleeping=False)
    _, result = run_engine(cfg)
    ms = result.model_stats
    # Sleeping packets are never absorbed in proof mode.
    assert ms["delivered_by_priority"][0] == 0
    assert ms["delivered"] > 0  # upgraded packets still arrive


def test_absorb_mode_changes_results():
    base = dict(n=6, duration=60.0, injector_fraction=0.5)
    _, a = run_engine(HotPotatoConfig(absorb_sleeping=True, **base))
    _, b = run_engine(HotPotatoConfig(absorb_sleeping=False, **base))
    assert a.model_stats["delivered"] > b.model_stats["delivered"]


def test_delivery_time_grows_linearly_with_n():
    from repro.analysis.linfit import fit_linear

    sizes = (4, 8, 12)
    times = []
    for n in sizes:
        cfg = HotPotatoConfig(n=n, duration=60.0, injector_fraction=1.0)
        _, result = run_engine(cfg)
        times.append(result.model_stats["avg_delivery_time"])
    assert times == sorted(times)  # monotone in N
    fit = fit_linear(sizes, times)
    assert fit.r_squared > 0.98  # the O(N) claim
    assert 0.3 < fit.slope < 2.0  # about a constant times N, not N^2


def test_injection_wait_increases_with_load():
    waits = {}
    for frac in (0.25, 1.0):
        cfg = HotPotatoConfig(n=8, duration=60.0, injector_fraction=frac)
        _, result = run_engine(cfg)
        waits[frac] = result.model_stats["avg_inject_wait"]
    assert waits[1.0] > waits[0.25]


def test_jitter_off_remains_deterministic_and_different():
    base = dict(n=6, duration=40.0, injector_fraction=1.0)
    _, a1 = run_engine(HotPotatoConfig(arrival_jitter=False, **base))
    _, a2 = run_engine(HotPotatoConfig(arrival_jitter=False, **base))
    assert a1.model_stats == a2.model_stats
    _, b = run_engine(HotPotatoConfig(arrival_jitter=True, **base))
    assert a1.model_stats != b.model_stats


def test_delivered_by_priority_sums_to_delivered():
    cfg = HotPotatoConfig(n=8, duration=60.0, injector_fraction=1.0)
    _, result = run_engine(cfg)
    ms = result.model_stats
    assert sum(ms["delivered_by_priority"]) == ms["delivered"]


def test_higher_states_appear_in_long_runs():
    # The probabilistic upgrade chain produces Active (and occasionally
    # higher) deliveries over a long, loaded run.
    cfg = HotPotatoConfig(n=6, duration=150.0, injector_fraction=1.0)
    _, result = run_engine(cfg)
    ms = result.model_stats
    assert ms["upgrades_sleeping"] > 0
    assert ms["delivered_by_priority"][1] > 0
