"""Chaos harness: episodes are deterministic, invariants hold, campaigns
resume from their journal."""

import dataclasses
import json

import pytest

from repro.chaos import (
    DISTURBANCES,
    EpisodeRecipe,
    derive_recipe,
    run_campaign,
    run_episode,
)

CAMPAIGN_SEED = 0xC4A05


def _recipe(disturbance: str, **overrides) -> EpisodeRecipe:
    base = dict(
        episode=0, seed=123, n=4, load=0.5, duration=12.0,
        fault=None, adversary=None, disturbance=disturbance,
        strike_boundary=10, hard_kill=False,
    )
    base.update(overrides)
    return EpisodeRecipe(**base)


def test_derive_recipe_is_deterministic():
    a = derive_recipe(CAMPAIGN_SEED, 3)
    b = derive_recipe(CAMPAIGN_SEED, 3)
    assert a == b
    assert a != derive_recipe(CAMPAIGN_SEED, 4)
    assert a != derive_recipe(CAMPAIGN_SEED + 1, 3)


def test_derived_recipes_are_well_formed():
    for index in range(16):
        recipe = derive_recipe(CAMPAIGN_SEED, index)
        assert recipe.episode == index
        assert recipe.n in (4, 8)
        assert 0.0 < recipe.load <= 1.0
        assert recipe.duration > 0
        assert recipe.disturbance in DISTURBANCES
        assert recipe.strike_boundary >= 8


@pytest.mark.parametrize("disturbance", DISTURBANCES)
def test_episode_upholds_invariants(disturbance, tmp_path):
    result = run_episode(_recipe(disturbance), tmp_path / "work")
    assert result.violations == []
    assert result.committed > 0
    if disturbance in ("watchdog_restore", "watchdog_fallback"):
        assert result.actions, "forced watchdog episode recorded no recovery"


def test_episode_hard_kill_resume(tmp_path):
    """Deleting the newest snapshot still converges from the older one."""
    result = run_episode(
        _recipe("kill_resume", hard_kill=True, strike_boundary=20,
                duration=16.0),
        tmp_path / "work",
    )
    assert result.violations == []


def test_episode_with_faults_and_adversary(tmp_path):
    result = run_episode(
        _recipe(
            "none",
            fault={"link_rate": 0.05, "seed": 9},
            adversary={"strategy": "hotspot", "rate": 1.0, "seed": 11},
        ),
        tmp_path / "work",
    )
    assert result.violations == []


def test_campaign_journals_and_resumes(tmp_path):
    out = tmp_path / "campaign"
    first = run_campaign(seed=CAMPAIGN_SEED, episodes=2, out_dir=out)
    assert first.ok
    assert first.episodes == 2
    assert first.skipped == 0

    journal = out / "episodes.jsonl"
    lines = [json.loads(l) for l in journal.read_text().splitlines()]
    assert [doc["episode"] for doc in lines] == [0, 1]
    assert all(doc["ok"] for doc in lines)
    # The journal captures the full recipe, so a campaign is auditable.
    assert lines[0]["recipe"] == dataclasses.asdict(
        derive_recipe(CAMPAIGN_SEED, 0)
    )

    # Resuming skips the journaled episodes and runs only the new one.
    second = run_campaign(seed=CAMPAIGN_SEED, episodes=3, out_dir=out)
    assert second.ok
    assert second.episodes == 3
    assert second.skipped == 2
    lines = [json.loads(l) for l in journal.read_text().splitlines()]
    assert [doc["episode"] for doc in lines] == [0, 1, 2]


def test_campaign_counts_journaled_violations(tmp_path):
    """A journaled violation keeps failing the campaign on resume."""
    out = tmp_path / "campaign"
    out.mkdir()
    fake = {"t": "episode", "episode": 0, "ok": False, "violations": ["x"]}
    (out / "episodes.jsonl").write_text(json.dumps(fake) + "\n")
    totals = run_campaign(seed=CAMPAIGN_SEED, episodes=1, out_dir=out)
    assert totals.episodes == 1
    assert totals.skipped == 1
    assert totals.violations == 1
    assert not totals.ok


def test_chaos_cli_smoke(tmp_path, capsys):
    from repro.chaos.__main__ import main

    out = tmp_path / "cli"
    assert main(["--episodes", "1", "--out-dir", str(out), "--quiet"]) == 0
    assert (out / "episodes.jsonl").exists()
    assert "0 violation(s)" in capsys.readouterr().out
