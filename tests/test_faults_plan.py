"""Unit tests for FaultPlan: validation, JSON round-trip, generation, CLI."""

import json

import pytest

from repro.faults import (
    CRASH,
    LINK_DOWN,
    LINK_UP,
    RECOVER,
    FaultEvent,
    FaultPlan,
    FaultPlanError,
    PEStall,
    generate_plan,
    load_plan,
)
from repro.faults.__main__ import main as faults_main
from repro.net import Direction, TorusTopology


def test_empty_plan_is_empty():
    plan = FaultPlan()
    assert plan.is_empty
    assert not plan.has_model_faults
    assert not plan.has_transport_faults
    assert not plan.has_stalls
    assert not plan.has_engine_faults
    plan.validate()


def test_plan_properties_by_layer():
    model = FaultPlan(events=(FaultEvent(0, LINK_DOWN, 1, int(Direction.EAST)),))
    assert model.has_model_faults and not model.has_engine_faults
    transport = FaultPlan(drop_rate=0.1)
    assert transport.has_transport_faults and transport.has_engine_faults
    assert not transport.has_model_faults
    stalls = FaultPlan(stalls=(PEStall(0, 2, 3),))
    assert stalls.has_stalls and stalls.has_engine_faults


def test_validate_rejects_bad_rates():
    with pytest.raises(FaultPlanError):
        FaultPlan(drop_rate=-0.1).validate()
    with pytest.raises(FaultPlanError):
        FaultPlan(dup_rate=1.5).validate()
    # Rates must sum to at most 1: they partition one uniform draw.
    with pytest.raises(FaultPlanError):
        FaultPlan(drop_rate=0.5, dup_rate=0.4, delay_rate=0.2).validate()
    with pytest.raises(FaultPlanError):
        FaultPlan(delay_rate=0.1, delay_rounds=0).validate()


def test_validate_rejects_bad_event_schedules():
    # A link cannot go down twice without healing in between.
    with pytest.raises(FaultPlanError):
        FaultPlan(
            events=(
                FaultEvent(1, LINK_DOWN, 0, 1),
                FaultEvent(5, LINK_DOWN, 0, 1),
            )
        ).validate()
    # Recover before crash is meaningless.
    with pytest.raises(FaultPlanError):
        FaultPlan(events=(FaultEvent(3, RECOVER, 0),)).validate()
    # Node bounds are checked when the caller supplies them.
    plan = FaultPlan(events=(FaultEvent(0, CRASH, 99),))
    plan.validate()
    with pytest.raises(FaultPlanError):
        plan.validate(num_nodes=16)
    with pytest.raises(FaultPlanError):
        FaultPlan(events=(FaultEvent(0, "meteor", 0),)).validate()


def test_json_round_trip_exact():
    plan = FaultPlan(
        events=(
            FaultEvent(0, LINK_DOWN, 3, int(Direction.SOUTH)),
            FaultEvent(2, CRASH, 5),
            FaultEvent(7, RECOVER, 5),
            FaultEvent(9, LINK_UP, 3, int(Direction.SOUTH)),
        ),
        drop_rate=0.05,
        dup_rate=0.02,
        delay_rate=0.1,
        delay_rounds=4,
        stalls=(PEStall(1, 10, 5),),
        seed=0xBEEF,
    )
    assert FaultPlan.from_json(plan.to_json()) == plan
    # And through a file, as the CLIs use it.
    doc = json.loads(plan.to_json())
    assert doc["version"] == 1
    assert FaultPlan.from_dict(doc) == plan


def test_generate_plan_is_deterministic_and_valid():
    topo = TorusTopology(6)
    kwargs = dict(
        duration=50.0,
        link_fail_rate=0.1,
        heal_after=10,
        router_crash_rate=0.05,
        recover_after=8,
        drop_rate=0.02,
        seed=1234,
    )
    a = generate_plan(topo, **kwargs)
    b = generate_plan(topo, **kwargs)
    assert a == b
    assert a.events  # 72 links at 10% + 36 routers at 5%: virtually certain
    a.validate(num_nodes=36)
    c = generate_plan(topo, **{**kwargs, "seed": 4321})
    assert c != a


def test_generate_plan_zero_rates_is_empty_schedule():
    plan = generate_plan(TorusTopology(4), duration=20.0)
    assert plan.events == ()


def test_cli_generate_validate_show(tmp_path, capsys):
    out = tmp_path / "plan.json"
    rc = faults_main(
        [
            "generate", "--n", "6", "--duration", "40",
            "--link-rate", "0.1", "--heal-after", "10",
            "--drop", "0.05", "--stall", "0:5:3",
            "-o", str(out),
        ]
    )
    assert rc == 0
    plan = load_plan(out)
    assert plan.drop_rate == 0.05
    assert plan.stalls == (PEStall(0, 5, 3),)
    assert faults_main(["validate", str(out), "--n", "6"]) == 0
    assert faults_main(["show", str(out)]) == 0
    text = capsys.readouterr().out
    assert "link" in text


def test_cli_validate_rejects_out_of_range_node(tmp_path, capsys):
    bad = FaultPlan(events=(FaultEvent(0, CRASH, 999),))
    path = tmp_path / "bad.json"
    bad.dump(path)
    assert faults_main(["validate", str(path), "--n", "4"]) != 0
