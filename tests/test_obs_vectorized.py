"""Observability parity under the vectorized executor.

The vectorized (struct-of-arrays) executor must be observationally
identical to the scalar one: same committed sequence, same summary and
timeline behaviour, a clean ``repro.obs diff`` verdict — while its own
activity (``soa_batches`` / ``soa_lps_stepped``) shows up in the metric
stream so the summary can report it.
"""

import pytest

from repro.core.config import EngineConfig
from repro.core.optimistic import run_optimistic
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.model import HotPotatoModel
from repro.obs.__main__ import main as obs_main
from repro.obs.capture import RunCapture
from repro.obs.recorder import load_recording

SEED = 0xB5EED
CFG = HotPotatoConfig(n=4, duration=10.0, injector_fraction=1.0)


def _record(tmp_path, executor):
    out = tmp_path / f"{executor}.jsonl"
    capture = RunCapture(
        metrics_out=out, trace_out=out, spans_out=out,
        meta={"engine": "optimistic", "workload": "hotpotato",
              "executor": executor},
    )
    result = run_optimistic(
        HotPotatoModel(CFG),
        EngineConfig(end_time=CFG.duration, n_pes=4, n_kps=16, batch_size=64,
                     seed=SEED, executor=executor),
        tracer=capture.tracer,
        metrics=capture.metrics,
        spans=capture.spans,
    )
    capture.finalize(result)
    return out, result


@pytest.fixture(scope="module")
def recordings(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("vec-obs")
    scalar = _record(tmp, "scalar")
    vector = _record(tmp, "vectorized")
    return scalar, vector


@pytest.fixture(scope="module")
def soa_recording(tmp_path_factory):
    """A vectorized run WITHOUT a tracer.

    Attaching a Tracer evicts the fused execute and with it the plan's
    compiled SoA batch (the kernel falls back to the scalar batch, which
    is observationally identical but never increments ``soa_*``).  To see
    real SoA activity in the metric stream the run must be trace-free —
    metrics and spans ride along without perturbing the fast path.
    """
    out = tmp_path_factory.mktemp("vec-soa") / "vectorized-notrace.jsonl"
    capture = RunCapture(
        metrics_out=out, spans_out=out,
        meta={"engine": "optimistic", "workload": "hotpotato",
              "executor": "vectorized"},
    )
    result = run_optimistic(
        HotPotatoModel(CFG),
        EngineConfig(end_time=CFG.duration, n_pes=4, n_kps=16, batch_size=64,
                     seed=SEED, executor="vectorized"),
        metrics=capture.metrics,
        spans=capture.spans,
    )
    capture.finalize(result)
    return out, result


def test_committed_results_identical(recordings):
    (_, scalar), (_, vector) = recordings
    assert vector.run.committed == scalar.run.committed
    assert vector.model_stats == scalar.model_stats


def test_diff_verdict_equivalent(recordings, capsys):
    (scalar_path, _), (vector_path, _) = recordings
    assert obs_main(["diff", str(scalar_path), str(vector_path)]) == 0
    assert "EQUIVALENT" in capsys.readouterr().out


def test_summary_surfaces_soa_counters(recordings, soa_recording, capsys):
    (scalar_path, _), _ = recordings
    soa_path, soa_result = soa_recording
    assert obs_main(["summary", str(soa_path)]) == 0
    out = capsys.readouterr().out
    assert "soa_batches" in out
    assert "span phases" in out
    # The trace-free vectorized run carries real SoA activity in its
    # metric stream; a traced run (scalar or vectorized) reports zero
    # because the tracer forces the scalar batch.
    vec = load_recording(soa_path)
    sca = load_recording(scalar_path)
    assert sum(s.soa_batches for s in vec.metrics) > 0
    assert sum(s.soa_lps_stepped for s in vec.metrics) > 0
    assert sum(s.soa_batches for s in sca.metrics) == 0
    # The cumulative stream total matches the run's own stats.
    assert sum(s.soa_batches for s in vec.metrics) == soa_result.run.soa_batches


def test_traced_vectorized_falls_back_to_scalar_batch(recordings):
    # With a Tracer attached the plan batch is evicted, so the traced
    # vectorized recording shows no SoA counters — documented behaviour.
    (_, _), (vector_path, _) = recordings
    vec = load_recording(vector_path)
    assert sum(s.soa_batches for s in vec.metrics) == 0


def test_timeline_vectorized_group(recordings, soa_recording, capsys):
    (scalar_path, _), _ = recordings
    soa_path, _ = soa_recording
    assert obs_main(
        ["timeline", str(soa_path), "--metric", "vectorized"]
    ) == 0
    assert "soa_batches" in capsys.readouterr().out
    # On the scalar recording the group has no nonzero series.
    assert obs_main(
        ["timeline", str(scalar_path), "--metric", "vectorized"]
    ) == 0
    assert "no nonzero series" in capsys.readouterr().out


def test_span_streams_parity(recordings):
    """Both executors record spans of the same phases (wall times differ)."""
    (scalar_path, _), (vector_path, _) = recordings
    sca = load_recording(scalar_path)
    vec = load_recording(vector_path)
    assert set(sca.span_breakdown()) == set(vec.span_breakdown())
    assert sca.span_breakdown()["exec"][0] > 0
    assert set(sca.span_busy_by_pe()) == set(vec.span_busy_by_pe())
    # Committed sequences stay the determinism anchor.
    assert sca.committed_sequence() == vec.committed_sequence()
