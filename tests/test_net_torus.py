"""Unit tests for torus geometry and routing primitives."""

import pytest

from repro.errors import TopologyError
from repro.net.directions import DIRECTIONS, Direction
from repro.net.torus import TorusTopology, _ring_delta


def test_dimensions_and_node_count():
    t = TorusTopology(4, 6)
    assert (t.rows, t.cols, t.num_nodes) == (4, 6, 24)


def test_square_default():
    t = TorusTopology(5)
    assert (t.rows, t.cols) == (5, 5)


def test_too_small_raises():
    with pytest.raises(TopologyError):
        TorusTopology(1)


def test_coords_node_id_roundtrip():
    t = TorusTopology(4, 6)
    for node in range(t.num_nodes):
        r, c = t.coords(node)
        assert t.node_id(r, c) == node


def test_coords_out_of_range():
    t = TorusTopology(3)
    with pytest.raises(TopologyError):
        t.coords(9)
    with pytest.raises(TopologyError):
        t.coords(-1)


def test_neighbor_matches_paper_formula():
    # §3.1.3: eastward send from lp is ((lp // C) * C) + ((lp + 1) % C).
    t = TorusTopology(32)
    for lp in (0, 31, 32, 1023, 500):
        expected = ((lp // 32) * 32) + ((lp + 1) % 32)
        assert t.neighbor(lp, Direction.EAST) == expected


def test_neighbor_wraps_all_edges():
    t = TorusTopology(3)
    assert t.neighbor(0, Direction.NORTH) == 6  # top wraps to bottom row
    assert t.neighbor(0, Direction.WEST) == 2  # left wraps to right col
    assert t.neighbor(8, Direction.SOUTH) == 2
    assert t.neighbor(8, Direction.EAST) == 6


def test_neighbor_relation_is_symmetric():
    t = TorusTopology(4, 5)
    for node in range(t.num_nodes):
        for d in DIRECTIONS:
            assert t.neighbor(t.neighbor(node, d), d.opposite) == node


def test_neighbors_tuple_matches_individual():
    t = TorusTopology(4)
    for node in range(t.num_nodes):
        assert t.neighbors(node) == tuple(t.neighbor(node, d) for d in DIRECTIONS)


# ----------------------------------------------------------------------
# Ring delta / distance.
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "src,dst,size,expected",
    [
        (0, 0, 8, 0),
        (0, 3, 8, 3),
        (0, 5, 8, -3),
        (0, 4, 8, 4),  # antipodal tie goes positive
        (6, 1, 8, 3),
        (0, 3, 7, 3),
        (0, 4, 7, -3),
    ],
)
def test_ring_delta(src, dst, size, expected):
    assert _ring_delta(src, dst, size) == expected


def test_distance_zero_iff_same_node():
    t = TorusTopology(5)
    for node in range(t.num_nodes):
        assert t.distance(node, node) == 0


def test_distance_symmetric():
    t = TorusTopology(6)
    for a in range(0, t.num_nodes, 5):
        for b in range(t.num_nodes):
            assert t.distance(a, b) == t.distance(b, a)


def test_distance_uses_wraparound():
    t = TorusTopology(8)
    a = t.node_id(0, 0)
    b = t.node_id(0, 7)
    assert t.distance(a, b) == 1  # around the edge, not 7 across


def test_diameter():
    assert TorusTopology(8).diameter() == 8
    assert TorusTopology(3).diameter() == 2


# ----------------------------------------------------------------------
# Good links.
# ----------------------------------------------------------------------
def test_good_dirs_empty_at_destination():
    t = TorusTopology(6)
    assert t.good_dirs(7, 7) == ()


def test_good_dirs_decrease_distance_by_one():
    t = TorusTopology(6)
    for src in range(t.num_nodes):
        for dst in range(t.num_nodes):
            for d in t.good_dirs(src, dst):
                assert t.distance(t.neighbor(src, d), dst) == t.distance(src, dst) - 1


def test_non_good_dirs_do_not_decrease_distance():
    t = TorusTopology(5)
    for src in range(t.num_nodes):
        for dst in range(t.num_nodes):
            good = set(t.good_dirs(src, dst))
            for d in DIRECTIONS:
                if d not in good:
                    assert (
                        t.distance(t.neighbor(src, d), dst)
                        >= t.distance(src, dst)
                    )


def test_good_dirs_horizontal_first():
    t = TorusTopology(8)
    dirs = t.good_dirs(t.node_id(0, 0), t.node_id(2, 2))
    assert dirs == (Direction.EAST, Direction.SOUTH)


def test_good_dirs_antipodal_column_offers_both():
    t = TorusTopology(8)
    dirs = t.good_dirs(t.node_id(0, 0), t.node_id(0, 4))
    assert Direction.EAST in dirs and Direction.WEST in dirs


# ----------------------------------------------------------------------
# Home-run paths.
# ----------------------------------------------------------------------
def test_homerun_row_phase_first():
    t = TorusTopology(8)
    src = t.node_id(1, 1)
    dst = t.node_id(4, 3)
    assert t.homerun_dir(src, dst) == Direction.EAST


def test_homerun_column_phase_after_turn():
    t = TorusTopology(8)
    src = t.node_id(1, 3)
    dst = t.node_id(4, 3)
    assert t.homerun_dir(src, dst) == Direction.SOUTH


def test_homerun_none_at_destination():
    t = TorusTopology(8)
    assert t.homerun_dir(5, 5) is None


def test_homerun_path_has_one_bend_and_right_length():
    t = TorusTopology(9)
    for src in (0, 13, 44):
        for dst in range(t.num_nodes):
            if src == dst:
                continue
            node, hops, phases = src, 0, []
            while node != dst:
                d = t.homerun_dir(node, dst)
                if not phases or phases[-1] != d.is_horizontal:
                    phases.append(d.is_horizontal)
                node = t.neighbor(node, d)
                hops += 1
                assert hops <= t.diameter(), "home-run path too long"
            assert hops == t.distance(src, dst)
            # Row phase (horizontal) strictly before column phase: at most
            # one bend, never horizontal after vertical.
            assert phases in ([True], [False], [True, False])


def test_is_turning_only_in_destination_column():
    t = TorusTopology(8)
    dst = t.node_id(4, 3)
    assert t.is_turning(t.node_id(1, 3), dst)  # right column, wrong row
    assert not t.is_turning(t.node_id(1, 2), dst)  # wrong column
    assert not t.is_turning(dst, dst)  # already there
