"""Documentation gate: every public module, class and function has a

docstring.  Keeps deliverable (e) — doc comments on every public item —
enforced rather than aspirational.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if "__main__" not in name
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} has no module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_members_documented(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-export; documented at its home
        if not inspect.getdoc(obj):
            missing.append(name)
        elif inspect.isclass(obj):
            for m_name, member in vars(obj).items():
                if m_name.startswith("_"):
                    continue
                if inspect.isfunction(member) and not inspect.getdoc(member):
                    missing.append(f"{name}.{m_name}")
    assert not missing, f"{module_name}: undocumented public items: {missing}"
