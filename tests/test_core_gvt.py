"""Tests for GVT managers: safety (never overshoots) and progress."""

import pytest

from repro.core.config import EngineConfig
from repro.core.gvt import MatternGVT, SynchronousGVT, make_gvt_manager
from repro.core.optimistic import TimeWarpKernel
from repro.models.phold import PholdConfig, PholdModel


def kernel_with(gvt_name, transport="mailbox"):
    cfg = EngineConfig(
        end_time=10.0,
        n_pes=2,
        n_kps=4,
        batch_size=8,
        mapping="striped",
        transport=transport,
        gvt=gvt_name,
    )
    return TimeWarpKernel(PholdModel(PholdConfig(n_lps=16, jobs_per_lp=2)), cfg)


def true_min_unprocessed(kernel):
    m = kernel.transport.min_in_flight_ts()
    for pe in kernel.pes:
        key = pe.pending.peek_key()
        if key is not None and key.ts < m:
            m = key.ts
    return m


@pytest.mark.parametrize("name", ["synchronous", "mattern"])
def test_estimate_is_safe_lower_bound_throughout_run(name):
    kernel = kernel_with(name)
    for lp in kernel.lps:
        lp._now = -1.0
        lp.on_init()
    estimates = []
    for _ in range(60):
        for pe in kernel.pes:
            pe.stats.round_busy = 0.0
            pe.process_batch(kernel, 8, 10.0)
        est = kernel.gvt_manager.estimate(kernel)
        assert est <= true_min_unprocessed(kernel) + 1e-12
        estimates.append(est)
        kernel.transport.flush()
    # Monotone non-decreasing and eventually progressing.
    assert estimates == sorted(estimates)
    assert estimates[-1] > 0.0


def test_synchronous_is_exact_post_flush():
    kernel = kernel_with("synchronous", transport="immediate")
    for lp in kernel.lps:
        lp._now = -1.0
        lp.on_init()
    for pe in kernel.pes:
        pe.process_batch(kernel, 20, 10.0)
    assert kernel.gvt_manager.estimate(kernel) == true_min_unprocessed(kernel)


def test_mattern_accounts_for_in_flight_messages():
    kernel = kernel_with("mattern", transport="mailbox")
    for lp in kernel.lps:
        lp._now = -1.0
        lp.on_init()
    # Process one PE far ahead so its sends sit in the other's mailbox.
    kernel.pes[0].process_batch(kernel, 50, 10.0)
    if kernel.transport.in_flight_count() > 0:
        est = kernel.gvt_manager.estimate(kernel)
        assert est <= kernel.transport.min_in_flight_ts()


def test_mattern_prunes_balanced_epochs():
    gvt = MatternGVT(2)
    kernel = kernel_with("synchronous", transport="immediate")
    kernel.gvt_manager = gvt
    for lp in kernel.lps:
        lp._now = -1.0
        lp.on_init()
    for _ in range(5):
        for pe in kernel.pes:
            pe.process_batch(kernel, 10, 10.0)
        gvt.estimate(kernel)
    # With the immediate transport every epoch balances at once.
    assert len(gvt._sent) <= 1


def test_make_gvt_manager():
    assert isinstance(make_gvt_manager("synchronous", 2), SynchronousGVT)
    assert isinstance(make_gvt_manager("mattern", 2), MatternGVT)
    with pytest.raises(ValueError):
        make_gvt_manager("oracle", 2)
