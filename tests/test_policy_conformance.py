"""Routing-policy conformance: bit-identical across all three engines.

The determinism contract (docs/KERNEL.md) is stated for the model, not
for one routing policy: every policy that draws randomness exclusively
through the LP's :class:`~repro.rng.streams.ReversibleStream` must
commit exactly the same event sequence on the sequential oracle, the
conservative (YAWNS) kernel and the Time Warp kernel — on golden seeds,
and under an active :class:`~repro.faults.FaultPlan`.  This suite pins
that for every registered policy, including the two-choice
balanced-allocation router, and for the scripted adversary.
"""

import pytest

from repro.baselines import POLICIES, make_policy
from repro.core.config import EngineConfig
from repro.core.conservative import ConservativeConfig, ConservativeKernel
from repro.core.engine import SequentialEngine
from repro.core.optimistic import TimeWarpKernel
from repro.core.trace import Tracer
from repro.faults import generate_plan
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.model import HotPotatoModel
from repro.net import TorusTopology
from repro.scenarios import generate_injection_plan

N = 4
DURATION = 12.0
GOLDEN_SEEDS = (7, 0x5EED)


def _fault_plan():
    return generate_plan(
        TorusTopology(N),
        duration=DURATION,
        link_fail_rate=0.02,
        heal_after=5,
        router_crash_rate=0.01,
        recover_after=4,
        seed=77,
    )


def _adversary():
    return generate_injection_plan(
        TorusTopology(N),
        strategy="hotspot",
        duration=DURATION,
        rate=0.5,
        seed=909,
    )


def _model(policy_name: str, faulted: bool, adversarial: bool):
    cfg = HotPotatoConfig(n=N, duration=DURATION, injector_fraction=1.0)
    return HotPotatoModel(
        cfg,
        make_policy(policy_name),
        fault_plan=_fault_plan() if faulted else None,
        injection_plan=_adversary() if adversarial else None,
    )


def _run(engine, policy_name, seed, faulted, adversarial=False):
    model = _model(policy_name, faulted, adversarial)
    tracer = Tracer()
    if engine == "seq":
        kernel = SequentialEngine(model, DURATION, seed=seed)
    elif engine == "cons":
        kernel = ConservativeKernel(
            model,
            ConservativeConfig(
                end_time=DURATION, n_pes=4, sync="yawns", seed=seed,
                lookahead=model.lookahead,
            ),
        )
    else:
        kernel = TimeWarpKernel(
            model,
            EngineConfig(
                end_time=DURATION, n_pes=4, n_kps=16, batch_size=16,
                seed=seed,
            ),
        )
    kernel.attach_tracer(tracer)
    result = kernel.run()
    return tracer.committed_sequence(), result.model_stats


@pytest.mark.parametrize("faulted", [False, True], ids=["clean", "faultplan"])
@pytest.mark.parametrize("seed", GOLDEN_SEEDS)
@pytest.mark.parametrize("policy", sorted(POLICIES))
def test_policy_bit_identical_across_engines(policy, seed, faulted):
    """seq == cons == opt: committed sequence and statistics."""
    seq_trace, seq_stats = _run("seq", policy, seed, faulted)
    assert seq_stats["delivered"] > 0
    for engine in ("cons", "opt"):
        trace, stats = _run(engine, policy, seed, faulted)
        assert trace == seq_trace, f"{engine} diverged from oracle"
        assert stats == seq_stats


@pytest.mark.parametrize("policy", ["busch", "two-choice"])
def test_adversary_bit_identical_across_engines(policy):
    """The scripted adversary preserves the contract on every engine."""
    seed = GOLDEN_SEEDS[0]
    seq_trace, seq_stats = _run("seq", policy, seed, True, adversarial=True)
    assert seq_stats["injected"] > 0
    for engine in ("cons", "opt"):
        trace, stats = _run(engine, policy, seed, True, adversarial=True)
        assert trace == seq_trace, f"{engine} diverged from oracle"
        assert stats == seq_stats


def test_two_choice_differs_from_busch():
    """Sanity: the two-choice policy is actually a different router (it
    must not silently alias the Busch state machine)."""
    _, busch = _run("seq", "busch", GOLDEN_SEEDS[0], False)
    _, two_choice = _run("seq", "two-choice", GOLDEN_SEEDS[0], False)
    assert busch != two_choice


def test_policy_registry_complete():
    """Every registered policy constructs and self-describes."""
    assert set(POLICIES) >= {
        "busch", "greedy", "dimension-order", "random-deflection",
        "two-choice",
    }
    for name in POLICIES:
        assert make_policy(name).name == name
