"""Unit and integration tests for the baseline deflection policies."""

import pytest

from repro.baselines.policies import (
    DimensionOrderPolicy,
    GreedyPolicy,
    RandomDeflectionPolicy,
)
from repro.core.engine import run_sequential
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.model import HotPotatoModel
from repro.hotpotato.packet import Priority
from repro.hotpotato.simulation import HotPotatoSimulation
from repro.net import Direction, TorusTopology
from repro.rng.streams import ReversibleStream

ALL_FREE = (True, True, True, True)


@pytest.fixture
def topo():
    return TorusTopology(8)


def cfg():
    return HotPotatoConfig(n=8)


def rng():
    return ReversibleStream(3)


def freeze(*dirs):
    return tuple(d in dirs for d in range(4))


def test_greedy_takes_good_link(topo):
    out = GreedyPolicy().route(
        topo, topo.node_id(0, 0), topo.node_id(0, 3), Priority.ACTIVE, ALL_FREE, rng(), cfg()
    )
    assert out.direction == Direction.EAST
    assert not out.deflected
    assert out.new_priority == Priority.ACTIVE


def test_greedy_deflects_when_blocked(topo):
    mask = freeze(Direction.NORTH)
    out = GreedyPolicy().route(
        topo, topo.node_id(0, 0), topo.node_id(0, 3), Priority.ACTIVE, mask, rng(), cfg()
    )
    assert out.deflected
    assert out.direction == Direction.NORTH


def test_greedy_never_upgrades(topo):
    out = GreedyPolicy().route(
        topo, 0, 9, Priority.SLEEPING, ALL_FREE, rng(), cfg()
    )
    assert out.new_priority == Priority.ACTIVE
    assert not out.upgraded


def test_dimension_order_prefers_row_hop(topo):
    out = DimensionOrderPolicy().route(
        topo, topo.node_id(0, 0), topo.node_id(2, 2), Priority.ACTIVE, ALL_FREE, rng(), cfg()
    )
    assert out.direction == Direction.EAST


def test_dimension_order_falls_back_to_other_good(topo):
    mask = freeze(Direction.SOUTH, Direction.NORTH)
    out = DimensionOrderPolicy().route(
        topo, topo.node_id(0, 0), topo.node_id(2, 2), Priority.ACTIVE, mask, rng(), cfg()
    )
    assert out.direction == Direction.SOUTH
    assert not out.deflected


def test_random_deflection_picks_among_good(topo):
    node, dest = topo.node_id(0, 0), topo.node_id(2, 2)
    seen = set()
    stream = rng()
    for _ in range(50):
        out = RandomDeflectionPolicy().route(
            topo, node, dest, Priority.ACTIVE, ALL_FREE, stream, cfg()
        )
        seen.add(out.direction)
        assert not out.deflected
    assert seen == {Direction.EAST, Direction.SOUTH}


def test_random_deflection_forced_choice_draws_nothing(topo):
    node, dest = topo.node_id(0, 0), topo.node_id(0, 3)
    stream = rng()
    out = RandomDeflectionPolicy().route(
        topo, node, dest, Priority.ACTIVE, ALL_FREE, stream, cfg()
    )
    assert out.direction == Direction.EAST
    assert stream.count == 0


@pytest.mark.parametrize(
    "policy_cls", [GreedyPolicy, DimensionOrderPolicy, RandomDeflectionPolicy]
)
def test_baseline_parallel_matches_sequential(policy_cls):
    cfg_run = HotPotatoConfig(n=6, duration=25.0, injector_fraction=1.0)
    sim = HotPotatoSimulation(cfg_run, policy=policy_cls())
    assert sim.run().model_stats == sim.run_parallel(
        n_pes=2, n_kps=6, mapping="striped"
    ).model_stats


def test_busch_beats_greedy_on_max_delivery_under_load():
    # The priority escort's purpose is bounding worst-case delivery; under
    # saturation it should not be (much) worse than memoryless greedy.
    base = dict(n=8, duration=120.0, injector_fraction=1.0)
    results = {}
    for name, policy in [("busch", None), ("greedy", GreedyPolicy())]:
        model = HotPotatoModel(HotPotatoConfig(**base), policy)
        results[name] = run_sequential(model, base["duration"]).model_stats
    assert results["busch"]["delivered"] > 0 and results["greedy"]["delivered"] > 0
    assert (
        results["busch"]["max_delivery_time"]
        <= results["greedy"]["max_delivery_time"] * 2.0
    )
