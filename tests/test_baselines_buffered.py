"""Tests for the buffered flow-controlled baseline network."""

import pytest

from repro.baselines.buffered import BufferedConfig, BufferedModel
from repro.core.config import EngineConfig
from repro.core.engine import SequentialEngine, run_sequential
from repro.core.optimistic import run_optimistic
from repro.errors import ConfigurationError
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.model import HotPotatoModel


def run(cfg, seed=1):
    return run_sequential(BufferedModel(cfg), cfg.duration, seed=seed)


def test_config_validation():
    with pytest.raises(ConfigurationError):
        BufferedConfig(window=0)
    with pytest.raises(ConfigurationError):
        BufferedConfig(n=1)
    with pytest.raises(ConfigurationError):
        BufferedConfig(duration=-1)
    with pytest.raises(ConfigurationError):
        BufferedConfig(injector_fraction=1.5)


def test_delivers_packets():
    result = run(BufferedConfig(n=6, duration=40.0))
    ms = result.model_stats
    assert ms["delivered"] > 0
    assert ms["injected"] >= ms["delivered"]
    assert ms["avg_delivery_time"] > 0


def test_window_limits_outstanding_packets():
    cfg = BufferedConfig(n=6, duration=40.0, window=2)
    engine = SequentialEngine(BufferedModel(cfg), cfg.duration, seed=1)
    engine.run()
    for lp in engine.lps:
        assert 0 <= lp.outstanding <= 2


def test_packet_conservation():
    cfg = BufferedConfig(n=6, duration=40.0, window=4)
    engine = SequentialEngine(BufferedModel(cfg), cfg.duration, seed=1)
    result = engine.run()
    ms = result.model_stats
    queued = sum(len(q) for lp in engine.lps for q in lp.queues)
    in_flight = sum(1 for ev in engine.pending if ev.kind == "B_ARRIVE")
    assert ms["injected"] == ms["delivered"] + queued + in_flight


def test_bigger_window_injects_more():
    small = run(BufferedConfig(n=6, duration=40.0, window=1)).model_stats
    large = run(BufferedConfig(n=6, duration=40.0, window=8)).model_stats
    assert large["injected"] > small["injected"]
    assert large["link_utilization"] > small["link_utilization"]


def test_window_blocking_counted():
    result = run(BufferedConfig(n=6, duration=40.0, window=1))
    assert result.model_stats["window_blocked"] > 0


def test_parallel_matches_sequential():
    cfg = BufferedConfig(n=6, duration=30.0, window=4)
    seq = run_sequential(BufferedModel(cfg), cfg.duration)
    par = run_optimistic(
        BufferedModel(cfg),
        EngineConfig(
            end_time=cfg.duration, n_pes=4, n_kps=12, batch_size=32, mapping="striped"
        ),
    )
    assert par.run.events_rolled_back > 0
    assert seq.model_stats == par.model_stats


def test_flow_control_underutilizes_links_vs_hotpotato():
    # The paper's motivating claim (§1.2.3).
    n, duration = 8, 60.0
    buffered = run(BufferedConfig(n=n, duration=duration, window=4)).model_stats
    hp_cfg = HotPotatoConfig(
        n=n, duration=duration, injector_fraction=1.0, heartbeat=True
    )
    hot = run_sequential(HotPotatoModel(hp_cfg), duration, seed=1).model_stats
    assert hot["link_utilization"] > 1.5 * buffered["link_utilization"]


def test_larger_window_increases_queueing_delay():
    # The classic flow-control trade-off: opening the window admits more
    # packets, which then queue behind each other in the buffers.
    small = run(BufferedConfig(n=8, duration=60.0, window=1)).model_stats
    large = run(BufferedConfig(n=8, duration=60.0, window=16)).model_stats
    assert large["avg_delivery_time"] > small["avg_delivery_time"]
    assert large["avg_queue_length"] > small["avg_queue_length"]
