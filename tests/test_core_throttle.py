"""Tests for the adaptive optimism throttle."""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import run_sequential
from repro.core.optimistic import run_optimistic
from repro.core.throttle import Throttle, ThrottleConfig
from repro.models.phold import PholdConfig, PholdModel

END = 25.0
PHOLD = PholdConfig(n_lps=48, jobs_per_lp=4, remote_fraction=0.9)


# ----------------------------------------------------------------------
# Controller unit tests.
# ----------------------------------------------------------------------
def test_high_rollback_halves_factor():
    t = Throttle()
    t.update(processed=100, rolled_back=50)
    assert t.factor == 0.5
    t.update(processed=100, rolled_back=50)
    assert t.factor == 0.25
    assert t.adjustments == 2
    assert len(t.history) == 2


def test_low_rollback_restores_factor():
    t = Throttle()
    t.factor = 0.25
    t.update(processed=100, rolled_back=0)
    assert t.factor == pytest.approx(0.375)
    for _ in range(10):
        t.update(processed=100, rolled_back=0)
    assert t.factor == 1.0  # capped


def test_midband_is_stable():
    t = Throttle()
    t.update(processed=100, rolled_back=10)  # between low=5% and high=20%
    assert t.factor == 1.0
    assert t.adjustments == 0


def test_floor_is_respected():
    t = Throttle(ThrottleConfig(floor=0.125))
    for _ in range(20):
        t.update(processed=10, rolled_back=10)
    assert t.factor == 0.125


def test_zero_processed_is_ignored():
    t = Throttle()
    t.update(processed=0, rolled_back=0)
    assert t.factor == 1.0


def test_scaled_preserves_types_and_floors():
    t = Throttle()
    t.factor = 0.1
    assert t.scaled(64, 1) == 6
    assert t.scaled(1, 1) == 1  # floor
    assert t.scaled(2.0, 0.5) == pytest.approx(0.5)


@pytest.mark.parametrize(
    "kwargs",
    [dict(low=0.5, high=0.2), dict(low=-0.1, high=0.5), dict(floor=0.0), dict(floor=2.0)],
)
def test_config_validation(kwargs):
    with pytest.raises(ValueError):
        ThrottleConfig(**kwargs)


# ----------------------------------------------------------------------
# Engine integration.
# ----------------------------------------------------------------------
def test_adaptive_run_matches_oracle():
    oracle = run_sequential(PholdModel(PHOLD), END).model_stats
    cfg = EngineConfig(
        end_time=END,
        n_pes=4,
        n_kps=8,
        batch_size=256,
        mapping="striped",
        adaptive=True,
    )
    result = run_optimistic(PholdModel(PHOLD), cfg)
    assert result.model_stats == oracle


def test_adaptive_throttles_a_rollback_heavy_run():
    cfg = EngineConfig(
        end_time=END,
        n_pes=4,
        n_kps=8,
        batch_size=512,
        mapping="random",  # maximise cross-PE traffic -> rollbacks
        adaptive=True,
    )
    result = run_optimistic(PholdModel(PHOLD), cfg)
    assert result.run.throttle_adjustments > 0
    assert result.run.throttle_final_factor <= 1.0


def test_adaptive_reduces_wasted_work():
    base = dict(
        end_time=END, n_pes=4, n_kps=8, batch_size=512, mapping="random"
    )
    fixed = run_optimistic(PholdModel(PHOLD), EngineConfig(**base))
    adaptive = run_optimistic(
        PholdModel(PHOLD), EngineConfig(adaptive=True, **base)
    )
    assert adaptive.model_stats == fixed.model_stats
    assert adaptive.run.events_rolled_back < fixed.run.events_rolled_back


def test_adaptive_repeatable():
    cfg = EngineConfig(
        end_time=END, n_pes=4, n_kps=8, batch_size=256, mapping="striped",
        adaptive=True,
    )
    a = run_optimistic(PholdModel(PHOLD), cfg)
    b = run_optimistic(PholdModel(PHOLD), cfg)
    assert a.model_stats == b.model_stats
    assert a.run.throttle_adjustments == b.run.throttle_adjustments


def test_adaptive_with_window_mode():
    oracle = run_sequential(PholdModel(PHOLD), END).model_stats
    cfg = EngineConfig(
        end_time=END,
        n_pes=4,
        n_kps=8,
        batch_size=1 << 20,
        window=3.0,
        mapping="striped",
        adaptive=True,
    )
    result = run_optimistic(PholdModel(PHOLD), cfg)
    assert result.model_stats == oracle
