"""Resume integrity: a bare ``--resume`` re-hashes every journaled input.

The manifest records each scenario's content hash and each fault-plan
file's SHA-256 at launch time.  Before a resumed sweep serves *any*
point — including ``done`` points whose results would otherwise come
straight off disk — the supervisor re-verifies those hashes and refuses
with an error naming the offending file if anything drifted.
"""

import hashlib
import json
import shutil
from pathlib import Path

import pytest

from repro.errors import ResumeIntegrityError
from repro.experiments.supervisor import Supervisor, SupervisorConfig
from repro.faults import generate_plan
from repro.scenarios import compile_scenario, load_scenario
from repro.net import TorusTopology

SCENARIO_SRC = Path(__file__).resolve().parent.parent / (
    "examples/scenarios/baseline_uniform.json"
)


def _supervisor(out_dir, *, resume=False) -> Supervisor:
    return Supervisor(SupervisorConfig(out_dir=out_dir, resume=resume))


def _plan_file(tmp_path) -> Path:
    plan = generate_plan(
        TorusTopology(4), duration=8.0, link_fail_rate=0.05, seed=3
    )
    path = tmp_path / "plan.json"
    plan.dump(path)
    return path


def _scenario_file(tmp_path) -> tuple[Path, str]:
    path = tmp_path / "scenario.json"
    shutil.copy(SCENARIO_SRC, path)
    digest = compile_scenario(load_scenario(path)).scenario_hash()
    return path, digest


def test_empty_manifest_verifies_nothing(tmp_path):
    sup = _supervisor(tmp_path / "sweep")
    try:
        assert sup.verify_resume_integrity() == 0
    finally:
        sup.close()


def test_fault_plan_round_trip_and_tamper(tmp_path):
    plan_path = _plan_file(tmp_path)
    spec = {"kind": "opt", "fault": {"plan": str(plan_path)}}

    sup = _supervisor(tmp_path / "sweep")
    try:
        # The hash the supervisor journals alongside `started` records.
        want = Supervisor._spec_plan_hash(spec)
        assert want == hashlib.sha256(plan_path.read_bytes()).hexdigest()
        sup._journal(point="p1", status="started", spec=spec, plan_hash=want)
        assert sup.verify_resume_integrity() == 1

        # Append one byte: the resume must refuse and name the file.
        plan_path.write_text(plan_path.read_text() + "\n")
        with pytest.raises(ResumeIntegrityError) as exc_info:
            sup.verify_resume_integrity()
        msg = str(exc_info.value)
        assert str(plan_path) in msg
        assert want in msg  # says what the manifest recorded

        # A vanished file is refused too, with a distinct explanation.
        plan_path.unlink()
        with pytest.raises(ResumeIntegrityError, match="no longer be read"):
            sup.verify_resume_integrity()
    finally:
        sup.close()


def test_scenario_round_trip_and_tamper(tmp_path):
    scen_path, digest = _scenario_file(tmp_path)
    spec = {
        "kind": "opt",
        "scenario": {
            "path": str(scen_path), "name": "baseline-uniform",
            "hash": digest,
        },
    }

    sup = _supervisor(tmp_path / "sweep")
    try:
        sup._journal(point="p1", status="done", spec=spec)
        assert sup.verify_resume_integrity() == 1

        # Change a semantically meaningful field: content hash drifts.
        doc = json.loads(scen_path.read_text())
        doc["traffic"]["injector_fraction"] = 0.5
        scen_path.write_text(json.dumps(doc))
        with pytest.raises(ResumeIntegrityError) as exc_info:
            sup.verify_resume_integrity()
        msg = str(exc_info.value)
        assert str(scen_path) in msg
        assert digest in msg

        # A scenario that no longer even loads is refused as well.
        scen_path.write_text("{not json")
        with pytest.raises(ResumeIntegrityError, match="no longer be loaded"):
            sup.verify_resume_integrity()
    finally:
        sup.close()


def test_latest_journal_record_wins(tmp_path):
    """Re-journaling a point (retry, fallback) updates the expected hash."""
    plan_path = _plan_file(tmp_path)
    spec = {"kind": "opt", "fault": {"plan": str(plan_path)}}
    sup = _supervisor(tmp_path / "sweep")
    try:
        sup._journal(point="p1", status="started", spec=spec,
                     plan_hash="0" * 64)  # stale hash from a dead attempt
        want = Supervisor._spec_plan_hash(spec)
        sup._journal(point="p1", status="started", spec=spec, plan_hash=want)
        assert sup.verify_resume_integrity() == 1
    finally:
        sup.close()


def test_supervisor_policy_is_a_recovery_policy(tmp_path):
    """Retry/backoff/fallback ride the shared RecoveryPolicy."""
    sup = Supervisor(SupervisorConfig(
        out_dir=tmp_path / "sweep", max_retries=5, backoff_base=0.25,
    ))
    try:
        assert sup.policy.max_restores == 5
        assert sup.policy.backoff(1) == 0.25
        assert sup.policy.backoff(3) == 1.0
        assert sup.policy.next_kind("optimistic") == "conservative"
    finally:
        sup.close()
    no_fb = Supervisor(SupervisorConfig(
        out_dir=tmp_path / "sweep2", fallback=False,
    ))
    try:
        assert no_fb.policy.next_kind("optimistic") is None
    finally:
        no_fb.close()


def test_cli_bare_resume_refuses_tampered_input(tmp_path, capsys):
    """`--resume DIR` exits 2 with the refusal before running anything."""
    from repro.experiments.runner import main

    plan_path = _plan_file(tmp_path)
    spec = {"kind": "opt", "fault": {"plan": str(plan_path)}}
    out = tmp_path / "sweep"
    sup = _supervisor(out)
    want = Supervisor._spec_plan_hash(spec)
    sup._journal(point="p1", status="started", spec=spec, plan_hash=want)
    sup.close()

    plan_path.write_text(plan_path.read_text() + "\n")
    assert main(["--resume", str(out)]) == 2
    err = capsys.readouterr().err
    assert "error:" in err
    assert str(plan_path) in err
