"""Scenario CLI, observability wiring, and supervised sweep integration."""

import json
import pathlib

import pytest

from repro.scenarios.__main__ import main as scenarios_main

EXAMPLES_DIR = (
    pathlib.Path(__file__).resolve().parent.parent / "examples" / "scenarios"
)
HOTSPOT = str(EXAMPLES_DIR / "adversarial_hotspot.json")
FAULTED = str(EXAMPLES_DIR / "adversarial_faulted.json")


def _tiny(tmp_path, **over):
    doc = {
        "schema": "RPSCEN01",
        "name": "tiny",
        "topology": {"kind": "torus", "n": 4},
        "traffic": {
            "model": "adversarial", "strategy": "hotspot",
            "rate": 0.5, "seed": 9,
        },
        "routing": {"policy": "busch"},
        "engine": {"duration": 10.0, "seed": 7},
    }
    doc.update(over)
    path = tmp_path / "tiny.json"
    path.write_text(json.dumps(doc))
    return str(path)


# ----------------------------------------------------------------------
# python -m repro.scenarios
# ----------------------------------------------------------------------
def test_cli_validate_all_examples(capsys):
    files = sorted(str(p) for p in EXAMPLES_DIR.glob("*.json"))
    assert scenarios_main(["validate", *files]) == 0
    out = capsys.readouterr().out
    assert "all" in out and "valid" in out


def test_cli_validate_reports_failures(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "RPSCEN01", "name": "x"}))
    assert scenarios_main(["validate", str(bad)]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_cli_show(capsys):
    assert scenarios_main(["show", HOTSPOT]) == 0
    out = capsys.readouterr().out
    assert "adversarial-hotspot" in out
    assert "adversarial/hotspot" in out
    assert "routing  : busch" in out


def test_cli_run_sequential_with_cross_engine_check(tmp_path, capsys):
    path = _tiny(tmp_path)
    assert scenarios_main(["run", path, "--validate"]) == 0
    out = capsys.readouterr().out
    assert "cross-engine check : IDENTICAL" in out
    assert "adversary" in out


@pytest.mark.parametrize("engine", ["cons", "opt"])
def test_cli_run_parallel_matches_oracle(tmp_path, capsys, engine):
    path = _tiny(tmp_path)
    assert scenarios_main(
        ["run", path, "--engine", engine, "--validate"]
    ) == 0
    assert "oracle check       : IDENTICAL" in capsys.readouterr().out


def test_cli_run_records_adversary_lines(tmp_path, capsys):
    from repro.obs.recorder import SCHEMA_VERSION, load_recording

    path = _tiny(tmp_path)
    out_jsonl = tmp_path / "run.jsonl"
    assert scenarios_main(
        ["run", path, "--trace-out", str(out_jsonl)]
    ) == 0
    rec = load_recording(out_jsonl)
    assert rec.header["schema"] == SCHEMA_VERSION
    assert rec.header["scenario"] == "tiny"
    assert rec.header["scenario_hash"]
    assert rec.adversary, "scripted injections must be logged up front"
    fields = set(rec.adversary[0])
    assert {"step", "node", "dest"} <= fields


def test_cli_rejects_garbage(tmp_path, capsys):
    bad = tmp_path / "nope.json"
    bad.write_text("{not json")
    assert scenarios_main(["show", str(bad)]) == 2


# ----------------------------------------------------------------------
# experiments integration
# ----------------------------------------------------------------------
def test_run_scenario_point_reports_percentiles(tmp_path):
    from repro.experiments.common import run_scenario_point

    result = run_scenario_point(_tiny(tmp_path), kind="seq")
    ms = result.model_stats
    assert ms["latency_p50"] <= ms["latency_p95"] <= ms["latency_p99"]
    assert ms["latency_p99"] > 0


def test_scenario_compare_experiment(tmp_path):
    from repro.experiments.common import SweepParams
    from repro.experiments.scenario_compare import run

    table = run(SweepParams(scenarios=(_tiny(tmp_path),)))
    assert len(table.rows) == 1
    row = dict(zip(table.columns, table.rows[0]))
    assert row["scenario"] == "tiny"
    assert row["par=seq"] is True
    assert row["delivered"] > 0


def test_pointworker_refuses_changed_scenario(tmp_path):
    from repro.experiments.pointworker import run_spec

    spec = {
        "kind": "seq", "seed": 7,
        "scenario": {"path": _tiny(tmp_path), "name": "tiny",
                     "hash": "0000000000000000"},
    }
    with pytest.raises(ValueError, match="refusing"):
        run_spec(spec, tmp_path / "hb", tmp_path / "ckpt")


def test_supervised_scenario_sweep_resumes(tmp_path):
    from repro.experiments.common import (
        SweepParams,
        set_supervisor,
    )
    from repro.experiments.scenario_compare import run
    from repro.experiments.supervisor import Supervisor, SupervisorConfig

    params = SweepParams(scenarios=(_tiny(tmp_path),))
    out_dir = tmp_path / "sweep"
    sup = Supervisor(SupervisorConfig(out_dir=out_dir))
    set_supervisor(sup)
    try:
        first = run(params)
    finally:
        set_supervisor(None)
        sup.close()

    manifest = (out_dir / "manifest.jsonl").read_text()
    assert '"scenario"' in manifest and '"hash"' in manifest

    sup = Supervisor(SupervisorConfig(out_dir=out_dir, resume=True))
    set_supervisor(sup)
    try:
        again = run(params)
    finally:
        set_supervisor(None)
        sup.close()
    assert again.rows == first.rows
