"""Handler-level tests for the buffered router: forward effects + reverses."""

import pytest

from repro.baselines.buffered import (
    B_ACK,
    B_ARRIVE,
    B_INJECT,
    B_STEP,
    BufferedConfig,
    BufferedRouterLP,
)
from repro.core.event import Event
from repro.net import Direction, TorusTopology
from repro.rng.streams import ReversibleStream
from repro.vt.time import EventKey


@pytest.fixture
def setup():
    cfg = BufferedConfig(n=4, duration=50.0, window=2)
    topo = TorusTopology(4)
    sends = []
    lp = BufferedRouterLP(5, cfg, topo, is_injector=True)
    lp.bind(ReversibleStream(9, 5), lambda src, ev: sends.append(ev))
    return lp, sends, topo


def state_of(lp):
    return (
        tuple(tuple(id(p) for p in q) for q in lp.queues),
        lp.outstanding,
        lp.head_gen_step,
        lp.delivered,
        lp.total_delivery_time,
        lp.injected,
        lp.total_inject_wait,
        lp.window_blocked,
        lp.forwarded,
        lp.queue_len_sum,
        lp.rng.checkpoint(),
        lp.send_seq,
    )


def execute(lp, kind, data, ts):
    ev = Event(EventKey(ts, lp.id, 77), lp.id, kind, data)
    ev.prev_send_seq = lp.send_seq
    before = lp.rng.count
    lp._now = ts
    lp.forward(ev)
    ev.rng_draws = lp.rng.count - before
    return ev


def undo(lp, ev):
    lp._now = ev.key.ts
    lp.reverse(ev)
    lp.rng.reverse(ev.rng_draws)
    lp.send_seq = ev.prev_send_seq


def test_arrive_transit_enqueues_by_dimension_order(setup):
    lp, sends, topo = setup
    dest = topo.neighbor(lp.id, Direction.EAST)
    pkt = {"step": 3, "dest": dest, "inject_step": 1, "src": 0}
    execute(lp, B_ARRIVE, pkt, 3.25)
    assert lp.queues[Direction.EAST] == [pkt]
    assert sends == []


def test_arrive_at_destination_delivers_and_acks(setup):
    lp, sends, topo = setup
    pkt = {"step": 4, "dest": lp.id, "inject_step": 1, "src": 2}
    execute(lp, B_ARRIVE, pkt, 4.25)
    assert lp.delivered == 1
    assert lp.total_delivery_time == 3
    (ack,) = sends
    assert ack.kind == B_ACK and ack.dst == 2


def test_step_serves_one_per_link_fifo(setup):
    lp, sends, topo = setup
    first = {"step": 5, "dest": topo.neighbor(lp.id, Direction.EAST), "inject_step": 1, "src": 0}
    second = dict(first, inject_step=2)
    lp.queues[Direction.EAST].extend([first, second])
    execute(lp, B_STEP, {"step": 5}, 5.6)
    arrives = [e for e in sends if e.kind == B_ARRIVE]
    (arrive,) = arrives
    assert arrive.data["inject_step"] == 1  # FIFO: first in, first out
    assert lp.queues[Direction.EAST] == [second]
    assert lp.forwarded == 1
    assert lp.util_claimed == 1


def test_inject_respects_window(setup):
    lp, sends, topo = setup
    lp.outstanding = 2  # window is 2
    execute(lp, B_INJECT, {"step": 0}, 0.9)
    assert lp.injected == 0
    assert lp.window_blocked == 1


def test_ack_opens_window(setup):
    lp, sends, topo = setup
    lp.outstanding = 2
    ev = execute(lp, B_ACK, {}, 1.5)
    assert lp.outstanding == 1
    undo(lp, ev)
    assert lp.outstanding == 2


@pytest.mark.parametrize(
    "kind,data,ts,prep",
    [
        (B_ARRIVE, {"step": 4, "dest": 5, "inject_step": 1, "src": 2}, 4.25, None),
        (B_STEP, {"step": 5}, 5.6, "queue"),
        (B_INJECT, {"step": 0}, 0.9, None),
        (B_INJECT, {"step": 0}, 0.9, "window_full"),
    ],
)
def test_reverse_restores_exactly(setup, kind, data, ts, prep):
    lp, sends, topo = setup
    if prep == "queue":
        lp.queues[Direction.EAST].append(
            {"step": 5, "dest": topo.neighbor(lp.id, Direction.EAST), "inject_step": 1, "src": 0}
        )
    elif prep == "window_full":
        lp.outstanding = 2
    before = state_of(lp)
    ev = execute(lp, kind, data, ts)
    undo(lp, ev)
    assert state_of(lp) == before


def test_snapshot_restore_roundtrip(setup):
    lp, sends, topo = setup
    execute(lp, B_INJECT, {"step": 0}, 0.9)
    snap = lp.snapshot_state()
    execute(lp, B_INJECT, {"step": 1}, 1.9)
    lp.restore_state(snap)
    assert lp.injected == 1
    assert lp.head_gen_step == 1
