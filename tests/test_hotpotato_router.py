"""Handler-level tests for the router LP: forward effects and exact reverses."""

import pytest

from repro.core.event import Event
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.packet import Priority
from repro.hotpotato.policy import BuschHotPotatoPolicy
from repro.hotpotato.router import (
    ARRIVE,
    HEARTBEAT,
    INIT,
    INJECT,
    ROUTE,
    RouterLP,
)
from repro.net import Direction, TorusTopology
from repro.rng.streams import ReversibleStream
from repro.vt.time import EventKey


@pytest.fixture
def setup():
    cfg = HotPotatoConfig(n=4, duration=50.0)
    topo = TorusTopology(4)
    sends = []
    lp = RouterLP(5, cfg, topo, BuschHotPotatoPolicy(), is_injector=True)
    lp.bind(ReversibleStream(11, 5), lambda src, ev: sends.append(ev))
    return lp, sends, topo, cfg


def state_of(lp):
    return (
        tuple(lp.links),
        lp.head_gen_step,
        lp.stats.signature(),
        lp.rng.checkpoint(),
        lp.send_seq,
    )


def execute(lp, kind, data, ts=1.0):
    """Kernel-style forward execution with RNG journaling."""
    ev = Event(EventKey(ts, lp.id, 999), lp.id, kind, data)
    ev.prev_send_seq = lp.send_seq
    before = lp.rng.count
    lp._now = ts
    lp.forward(ev)
    ev.rng_draws = lp.rng.count - before
    return ev


def undo(lp, ev):
    """Kernel-style undo (reverse computation)."""
    lp.reverse(ev)
    lp.rng.reverse(ev.rng_draws)
    lp.send_seq = ev.prev_send_seq


def packet_data(step, dest, priority=Priority.SLEEPING, inject_step=0, jitter=0.25, distance=1, src=0):
    return {
        "step": step,
        "dest": dest,
        "priority": int(priority),
        "inject_step": inject_step,
        "jitter": jitter,
        "distance": distance,
        "src": src,
    }


# ----------------------------------------------------------------------
# ARRIVE.
# ----------------------------------------------------------------------
def test_arrive_at_destination_absorbs_and_records(setup):
    lp, sends, topo, cfg = setup
    data = packet_data(step=7, dest=lp.id, priority=Priority.ACTIVE, inject_step=2, distance=3)
    execute(lp, ARRIVE, data, ts=7.25)
    assert lp.stats.delivered == 1
    assert lp.stats.total_delivery_time == 5
    assert lp.stats.total_distance == 3
    assert lp.stats.max_delivery_time == 5
    assert lp.stats.delivered_by_priority[int(Priority.ACTIVE)] == 1
    assert sends == []  # absorbed packets go nowhere


def test_arrive_elsewhere_schedules_route_with_priority_stagger(setup):
    lp, sends, topo, cfg = setup
    for prio, rank in [(Priority.RUNNING, 0), (Priority.SLEEPING, 3)]:
        sends.clear()
        data = packet_data(step=7, dest=lp.id + 1, priority=prio, jitter=0.5)
        execute(lp, ARRIVE, data, ts=7.5)
        (route,) = sends
        assert route.kind == ROUTE
        assert route.dst == lp.id
        assert route.ts == pytest.approx(7 + 0.6 + 0.05 * rank + 0.04 * 0.5)
        # All ROUTE stamps stay inside the step, before INJECT at +0.9.
        assert 7.6 <= route.ts < 7.9


def test_sleeping_packet_not_absorbed_in_proof_mode(setup):
    lp, sends, topo, _ = setup
    lp.cfg = HotPotatoConfig(n=4, duration=50.0, absorb_sleeping=False)
    data = packet_data(step=3, dest=lp.id, priority=Priority.SLEEPING)
    execute(lp, ARRIVE, data, ts=3.25)
    assert lp.stats.delivered == 0
    assert len(sends) == 1 and sends[0].kind == ROUTE


def test_active_packet_absorbed_even_in_proof_mode(setup):
    lp, sends, topo, _ = setup
    lp.cfg = HotPotatoConfig(n=4, duration=50.0, absorb_sleeping=False)
    data = packet_data(step=3, dest=lp.id, priority=Priority.ACTIVE)
    execute(lp, ARRIVE, data, ts=3.25)
    assert lp.stats.delivered == 1


def test_arrive_reverse_restores_exactly(setup):
    lp, sends, topo, cfg = setup
    before = state_of(lp)
    ev = execute(lp, ARRIVE, packet_data(step=7, dest=lp.id, priority=Priority.ACTIVE), ts=7.25)
    undo(lp, ev)
    assert state_of(lp) == before


# ----------------------------------------------------------------------
# ROUTE.
# ----------------------------------------------------------------------
def test_route_claims_link_and_forwards(setup):
    lp, sends, topo, cfg = setup
    dest = topo.neighbor(topo.neighbor(lp.id, Direction.EAST), Direction.EAST)
    ev = execute(lp, ROUTE, packet_data(step=4, dest=dest), ts=4.75)
    assert lp.links[Direction.EAST] == 4
    (arrive,) = sends
    assert arrive.kind == ARRIVE
    assert arrive.dst == topo.neighbor(lp.id, Direction.EAST)
    assert arrive.data["step"] == 5
    assert arrive.ts == pytest.approx(5.25)
    assert lp.stats.routes == 1


def test_route_respects_claimed_links(setup):
    lp, sends, topo, cfg = setup
    dest = topo.neighbor(lp.id, Direction.EAST)
    lp.links[Direction.EAST] = 4  # claimed this step
    ev = execute(lp, ROUTE, packet_data(step=4, dest=dest, priority=Priority.ACTIVE), ts=4.7)
    (arrive,) = sends
    assert arrive.dst != dest  # deflected somewhere else
    assert lp.stats.deflections == 1


def test_route_with_no_free_link_overflows_reversibly(setup):
    # A transiently-impossible state (only reachable mid-speculation under
    # lazy cancellation): the router routes anyway, counts the overflow,
    # and the whole thing reverses exactly.
    lp, sends, topo, cfg = setup
    before_links = [9, 9, 9, 9]
    lp.links = list(before_links)
    before = state_of(lp)
    ev = execute(lp, ROUTE, packet_data(step=9, dest=0), ts=9.7)
    assert lp.stats.overflow_routes == 1
    assert lp.stats.routes == 1
    assert len(sends) == 1  # the packet still goes somewhere
    undo(lp, ev)
    assert state_of(lp) == before
    assert lp.links == before_links


def test_route_reverse_restores_exactly(setup):
    lp, sends, topo, cfg = setup
    dest = topo.node_id(2, 2)
    before = state_of(lp)
    ev = execute(lp, ROUTE, packet_data(step=4, dest=dest), ts=4.75)
    assert state_of(lp) != before
    undo(lp, ev)
    assert state_of(lp) == before


def test_route_reverse_after_upgrade_restores_stats(setup):
    lp, sends, topo, cfg = setup
    lp.cfg = HotPotatoConfig(n=4, duration=50.0, sleeping_upgrade_scale=1e-9)
    dest = topo.node_id(2, 2)
    before = state_of(lp)
    ev = execute(lp, ROUTE, packet_data(step=4, dest=dest), ts=4.75)
    assert lp.stats.upgrades_sleeping == 1
    undo(lp, ev)
    assert state_of(lp) == before


# ----------------------------------------------------------------------
# INJECT.
# ----------------------------------------------------------------------
def test_inject_sends_packet_and_chains(setup):
    lp, sends, topo, cfg = setup
    ev = execute(lp, INJECT, {"step": 0}, ts=0.9)
    kinds = sorted(e.kind for e in sends)
    assert kinds == sorted([INJECT, ARRIVE])
    assert lp.stats.injected == 1
    assert lp.head_gen_step == 1
    assert lp.stats.total_inject_wait == 0  # injected the step it was born
    arrive = next(e for e in sends if e.kind == ARRIVE)
    assert arrive.data["priority"] == int(Priority.SLEEPING)
    assert arrive.data["inject_step"] == 0
    assert arrive.data["dest"] != lp.id


def test_inject_blocked_when_all_links_claimed(setup):
    lp, sends, topo, cfg = setup
    lp.links = [3, 3, 3, 3]
    execute(lp, INJECT, {"step": 3}, ts=3.9)
    assert lp.stats.injected == 0
    assert lp.stats.inject_blocked == 1
    assert [e.kind for e in sends] == [INJECT]  # only the chain continues


def test_inject_wait_measured_from_generation(setup):
    lp, sends, topo, cfg = setup
    lp.links = [5, 5, 5, 5]
    execute(lp, INJECT, {"step": 5}, ts=5.9)  # blocked
    lp.links = [5, 5, 5, 5]  # still claimed for step 5, free at 6
    execute(lp, INJECT, {"step": 6}, ts=6.9)
    assert lp.stats.injected == 1
    assert lp.stats.total_inject_wait == 6  # head generated at step 0
    assert lp.stats.max_inject_wait == 6


def test_inject_nothing_pending(setup):
    lp, sends, topo, cfg = setup
    lp.head_gen_step = 1  # already injected the step-0 packet
    execute(lp, INJECT, {"step": 0}, ts=0.9)
    assert lp.stats.injected == 0
    assert [e.kind for e in sends] == [INJECT]


@pytest.mark.parametrize("blocked", [False, True])
def test_inject_reverse_restores_exactly(setup, blocked):
    lp, sends, topo, cfg = setup
    if blocked:
        lp.links = [2, 2, 2, 2]
    before = state_of(lp)
    ev = execute(lp, INJECT, {"step": 2}, ts=2.9)
    undo(lp, ev)
    assert state_of(lp) == before


# ----------------------------------------------------------------------
# INIT and HEARTBEAT.
# ----------------------------------------------------------------------
def test_init_fills_all_links_and_chains_inject(setup):
    lp, sends, topo, cfg = setup
    ev = execute(lp, INIT, {}, ts=0.1)
    assert lp.links == [0, 0, 0, 0]
    arrives = [e for e in sends if e.kind == ARRIVE]
    assert len(arrives) == 4
    assert {e.dst for e in arrives} == set(topo.neighbors(lp.id))
    assert lp.stats.initial_packets == 4
    assert any(e.kind == INJECT for e in sends)


def test_init_zero_fill(setup):
    lp, sends, topo, cfg = setup
    lp.cfg = HotPotatoConfig(n=4, duration=50.0, initial_fill=0.0)
    execute(lp, INIT, {}, ts=0.1)
    assert lp.links == [-1, -1, -1, -1]
    assert lp.stats.initial_packets == 0


def test_init_reverse_restores_exactly(setup):
    lp, sends, topo, cfg = setup
    before = state_of(lp)
    ev = execute(lp, INIT, {}, ts=0.1)
    undo(lp, ev)
    assert state_of(lp) == before


def test_heartbeat_samples_utilization(setup):
    lp, sends, topo, cfg = setup
    lp.links = [6, 6, -1, 2]  # two links claimed at step 6
    ev = execute(lp, HEARTBEAT, {"step": 6}, ts=6.95)
    assert lp.stats.util_claimed == 2
    assert lp.stats.util_samples == 4
    assert [e.kind for e in sends] == [HEARTBEAT]
    undo(lp, ev)
    assert lp.stats.util_claimed == 0
    assert lp.stats.util_samples == 0


# ----------------------------------------------------------------------
# Snapshots (state-saving strategy hooks).
# ----------------------------------------------------------------------
def test_snapshot_restore_roundtrip(setup):
    lp, sends, topo, cfg = setup
    execute(lp, INIT, {}, ts=0.1)
    snap = lp.snapshot_state()
    execute(lp, INJECT, {"step": 1}, ts=1.9)
    lp.restore_state(snap)
    assert lp.links == [0, 0, 0, 0]
    assert lp.head_gen_step == 0
    assert lp.stats.injected == 0
    assert lp.stats.initial_packets == 4
