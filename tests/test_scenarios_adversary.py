"""Adversarial injection plans: generation, validation, replay, reversal.

The adversary contract mirrors the fault subsystem's: a plan is pure
data, expanded once from its own seeded stream, validated before any
router sees it, and serialisable so a recorded attack replays exactly.
"""

import pytest

from repro.net import TorusTopology
from repro.scenarios import (
    InjectionEvent,
    InjectionPlan,
    InjectionPlanError,
    generate_injection_plan,
    load_injection_plan,
)
from repro.scenarios.adversary import STRATEGIES

N = 4
DURATION = 16.0


def _topo():
    return TorusTopology(N)


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_generation_deterministic(strategy):
    a = generate_injection_plan(
        _topo(), strategy=strategy, duration=DURATION, rate=0.5, seed=11
    )
    b = generate_injection_plan(
        _topo(), strategy=strategy, duration=DURATION, rate=0.5, seed=11
    )
    assert a.entries == b.entries
    assert a.entries, strategy


def test_generation_seed_sensitive():
    a = generate_injection_plan(
        _topo(), strategy="hotspot", duration=DURATION, rate=0.5, seed=11
    )
    b = generate_injection_plan(
        _topo(), strategy="hotspot", duration=DURATION, rate=0.5, seed=12
    )
    assert a.entries != b.entries


def test_rate_bounds_injections_per_node():
    plan = generate_injection_plan(
        _topo(), strategy="hotspot", duration=DURATION, rate=0.25, seed=3
    )
    per_node = {}
    for ev in plan.entries:
        per_node.setdefault(ev.node, []).append(ev.step)
    steps = int(DURATION)
    for node, node_steps in per_node.items():
        assert len(node_steps) <= steps
        assert node_steps == sorted(set(node_steps)), (
            "a node may inject at most once per step"
        )
    total = len(plan.entries)
    assert total <= 0.25 * steps * N * N + N * N  # rate bound (+rounding)


def test_transpose_targets():
    plan = generate_injection_plan(
        _topo(), strategy="transpose", duration=4.0, rate=1.0, seed=5
    )
    topo = _topo()
    for ev in plan.entries:
        r, c = topo.coords(ev.node)
        assert ev.dest == topo.node_id(c, r)


def test_tornado_targets():
    plan = generate_injection_plan(
        _topo(), strategy="tornado", duration=4.0, rate=1.0, seed=5
    )
    topo = _topo()
    for ev in plan.entries:
        r, c = topo.coords(ev.node)
        assert ev.dest == topo.node_id(r, (c + topo.cols // 2) % topo.cols)


def test_burst_pattern_has_gaps():
    plan = generate_injection_plan(
        _topo(), strategy="burst", duration=32.0, rate=1.0, seed=5,
        burst_len=4, burst_gap=4,
    )
    steps = {ev.step for ev in plan.entries}
    assert steps  # bursts fired
    assert all(s % 8 < 4 for s in steps)  # nothing inside the gaps


def test_validate_rejects_self_addressed():
    plan = InjectionPlan(entries=(InjectionEvent(step=0, node=3, dest=3),))
    with pytest.raises(InjectionPlanError, match="itself"):
        plan.validate(num_nodes=16)


def test_validate_rejects_out_of_range():
    plan = InjectionPlan(entries=(InjectionEvent(step=0, node=99, dest=1),))
    with pytest.raises(InjectionPlanError):
        plan.validate(num_nodes=16)


def test_validate_rejects_double_injection_per_step():
    plan = InjectionPlan(
        entries=(
            InjectionEvent(step=2, node=0, dest=1),
            InjectionEvent(step=2, node=0, dest=2),
        )
    )
    with pytest.raises(InjectionPlanError):
        plan.validate(num_nodes=16)


def test_json_roundtrip(tmp_path):
    plan = generate_injection_plan(
        _topo(), strategy="hotspot", duration=DURATION, rate=0.5, seed=11
    )
    path = tmp_path / "attack.json"
    plan.dump(path)
    loaded = load_injection_plan(path)
    assert loaded.entries == plan.entries
    assert loaded.strategy == plan.strategy
    assert loaded.seed == plan.seed


def test_compile_groups_per_node():
    plan = generate_injection_plan(
        _topo(), strategy="hotspot", duration=DURATION, rate=0.5, seed=11
    )
    scripts = plan.compile(num_nodes=16)
    assert len(scripts) == 16
    total = sum(len(s) for s in scripts)
    assert total == len(plan.entries)
    for script in scripts:
        assert list(script) == sorted(script)  # per-node steps ascending
