"""Unit tests for packets and priority states."""

from repro.hotpotato.packet import Packet, Priority


def test_priority_ordering():
    assert (
        Priority.SLEEPING
        < Priority.ACTIVE
        < Priority.EXCITED
        < Priority.RUNNING
    )


def test_route_rank_inverts_priority():
    # Higher priority routes first (smaller rank → earlier ROUTE stamp).
    assert Priority.RUNNING.route_rank == 0
    assert Priority.EXCITED.route_rank == 1
    assert Priority.ACTIVE.route_rank == 2
    assert Priority.SLEEPING.route_rank == 3


def make():
    return Packet(
        dest=42,
        priority=Priority.ACTIVE,
        inject_step=3,
        jitter=0.125,
        distance=7,
        src=1,
    )


def test_fields_roundtrip():
    p = make()
    data = p.fields(step=9)
    assert data["step"] == 9
    q = Packet.from_fields(data)
    assert (q.dest, q.priority, q.inject_step, q.jitter, q.distance, q.src) == (
        42,
        Priority.ACTIVE,
        3,
        0.125,
        7,
        1,
    )


def test_fields_priority_is_plain_int():
    # Event payloads carry ints so dict equality across engines is trivial.
    data = make().fields(step=0)
    assert type(data["priority"]) is int


def test_hop_changes_priority_only():
    p = make()
    d = p.hop(step=10, priority=Priority.RUNNING)
    assert d["priority"] == int(Priority.RUNNING)
    assert d["step"] == 10
    assert d["dest"] == 42
    # Original packet object untouched.
    assert p.priority == Priority.ACTIVE
