"""Unit tests for the LogicalProcess/Model base classes."""

import pytest

from repro.core.event import Event
from repro.core.lp import LogicalProcess, Model
from repro.errors import SchedulingError
from repro.rng.streams import ReversibleStream


class PlainLP(LogicalProcess):
    def forward(self, event):
        pass

    def reverse(self, event):
        pass


def bound_lp(sink):
    lp = PlainLP(3)
    lp.bind(ReversibleStream(1), lambda src, ev: sink.append((src, ev)))
    return lp


def test_send_creates_keyed_event_and_bumps_seq():
    sink = []
    lp = bound_lp(sink)
    lp._now = 1.0
    e1 = lp.send(2.0, 7, "K", {"a": 1})
    e2 = lp.send(2.0, 8, "K")
    assert e1.key == (2.0, 3, 0)
    assert e2.key == (2.0, 3, 1)
    assert lp.send_seq == 2
    assert [ev for (_, ev) in sink] == [e1, e2]
    assert e1.data == {"a": 1}
    assert e2.data == {}


def test_send_into_past_rejected():
    lp = bound_lp([])
    lp._now = 5.0
    with pytest.raises(SchedulingError):
        lp.send(5.0, 0, "K")  # zero-delay also rejected
    with pytest.raises(SchedulingError):
        lp.send(4.0, 0, "K")


def test_bootstrap_send_at_time_zero_allowed():
    sink = []
    lp = bound_lp(sink)
    lp._now = -1.0  # the engines set this before on_init
    lp.send(0.0, 0, "K")
    assert len(sink) == 1


def test_forward_reverse_required():
    lp = LogicalProcess(0)
    with pytest.raises(NotImplementedError):
        lp.forward(None)
    with pytest.raises(NotImplementedError):
        lp.reverse(None)


def test_default_hooks_are_noops():
    lp = PlainLP(0)
    lp.on_init()
    lp.commit(None)


def test_default_snapshot_deepcopies_state():
    lp = PlainLP(0)
    lp.state = {"xs": [1, 2]}
    snap = lp.snapshot_state()
    lp.state["xs"].append(3)
    lp.restore_state(snap)
    assert lp.state == {"xs": [1, 2]}


def test_flat_list_snapshot_is_independent_copy():
    lp = PlainLP(0)
    lp.state = [1, 2.5, "x", None, True]
    snap = lp.snapshot_state()
    assert snap == lp.state and snap is not lp.state
    lp.state[0] = 99
    lp.restore_state(snap)
    assert lp.state == [1, 2.5, "x", None, True]


def test_flat_dict_snapshot_is_independent_copy():
    lp = PlainLP(0)
    lp.state = {"count": 7, "name": "a", "rate": 0.5}
    snap = lp.snapshot_state()
    assert snap == lp.state and snap is not lp.state
    lp.state["count"] = 0
    lp.restore_state(snap)
    assert lp.state == {"count": 7, "name": "a", "rate": 0.5}


def test_scalar_and_scalar_tuple_snapshots_shared():
    lp = PlainLP(0)
    lp.state = 42
    assert lp.snapshot_state() is lp.state
    lp.state = (1, "a", 2.0)
    assert lp.snapshot_state() is lp.state


def test_nested_state_still_deepcopied():
    lp = PlainLP(0)
    for state in (
        {"xs": [1, 2]},          # dict holding a mutable
        [[1], [2]],              # list of lists
        (1, [2]),                # tuple holding a mutable
    ):
        lp.state = state
        snap = lp.snapshot_state()
        assert snap == state and snap is not state
        # Mutating the live state must not leak into the snapshot.
        if isinstance(state, dict):
            state["xs"].append(3)
            assert snap["xs"] == [1, 2]
        elif isinstance(state, list):
            state[0].append(9)
            assert snap[0] == [1]
        else:
            state[1].append(9)
            assert snap[1] == [2]


def test_container_subclass_state_deepcopied():
    class Tally(dict):
        pass

    lp = PlainLP(0)
    lp.state = Tally(a=1)
    snap = lp.snapshot_state()
    assert type(snap) is Tally and snap is not lp.state


def test_model_interface_abstract():
    m = Model()
    with pytest.raises(NotImplementedError):
        m.build()
    with pytest.raises(NotImplementedError):
        m.collect_stats([])
