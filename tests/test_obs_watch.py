"""Tests for the watch dashboard: tailing, rendering, --once CLI mode."""

import io
import json

from repro.obs.__main__ import main as obs_main
from repro.obs.capture import RunCapture
from repro.obs.watch import WatchState, _Tail, render_frame, watch
from repro.core.engine import run_sequential
from repro.models.phold import PholdConfig, PholdModel

END = 15.0
PHOLD = PholdConfig(n_lps=16, jobs_per_lp=2, remote_fraction=0.7)


def _record(tmp_path, name="run.jsonl"):
    out = tmp_path / name
    capture = RunCapture(
        metrics_out=out, trace_out=out, spans_out=out,
        meta={"engine": "sequential", "workload": "phold"},
    )
    result = run_sequential(
        PholdModel(PHOLD), END,
        tracer=capture.tracer, metrics=capture.metrics, spans=capture.spans,
    )
    capture.finalize(result)
    return out, result


def test_state_folds_all_line_types():
    state = WatchState()
    state.feed_line(json.dumps({"t": "header", "schema": 3, "engine": "x"}))
    state.feed_line(json.dumps(
        {"t": "metric", "round": 0, "gvt": 1.0, "committed": 5,
         "rolled_back": 1, "pending": 3}
    ))
    state.feed_line(json.dumps(
        {"t": "span", "ph": "exec", "t0": 0.0, "dt": 0.25, "pe": 2, "n": 5}
    ))
    state.feed_line(json.dumps({"t": "trace", "a": "COMMIT"}))
    state.feed_line("not json at all")
    assert state.header["engine"] == "x"
    assert state.n_samples == 1
    assert state.gvt_points == [(0.0, 1.0)]
    assert state.span_totals["exec"] == [1, 0.25]
    assert state.busy_by_pe == {2: 0.25}
    assert state.trace_counts["COMMIT"] == 1
    assert state.bad_lines == 1
    assert not state.finished
    state.feed_line(json.dumps({"t": "stats", "committed": 5}))
    assert state.finished


def test_tail_tolerates_torn_lines(tmp_path):
    path = tmp_path / "grow.jsonl"
    state = WatchState()
    tail = _Tail(path)
    with open(path, "w") as fh:
        fh.write('{"t": "header", "schema": 3}\n{"t": "trace", "a": "EX')
        fh.flush()
        assert tail.poll(state) == 1  # header complete, trace line torn
        assert state.header is not None
        assert state.trace_counts["EXEC"] == 0
        fh.write('EC"}\n')
        fh.flush()
    assert tail.poll(state) == 1  # the torn line completed
    assert state.trace_counts["EXEC"] == 1
    assert state.bad_lines == 0


def test_render_frame_before_any_data():
    text = render_frame(WatchState())
    assert "waiting for header" in text
    assert "no metric samples" in text


def test_watch_once_on_finished_recording(tmp_path):
    out, result = _record(tmp_path)
    buf = io.StringIO()
    assert watch(out, once=True, out=buf) == 0
    text = buf.getvalue()
    assert "finished" in text
    assert f"committed={result.run.committed}" in text
    assert "GVT progress" in text
    assert "span phases" in text
    assert "\x1b" not in text, "--once output must be control-sequence-free"


def test_watch_once_on_live_partial_recording(tmp_path):
    out, _result = _record(tmp_path)
    # Simulate a run still writing: cut the file mid-line before stats.
    data = out.read_bytes()
    partial = tmp_path / "partial.jsonl"
    partial.write_bytes(data[: int(len(data) * 0.6)])
    buf = io.StringIO()
    assert watch(partial, once=True, out=buf) == 0
    assert "running" in buf.getvalue()


def test_watch_live_exits_when_recording_finishes(tmp_path):
    out, _result = _record(tmp_path)
    buf = io.StringIO()
    # Live mode on an already-finished file: first frame sees the stats
    # line and the loop ends immediately.
    assert watch(out, once=False, interval=0.01, out=buf) == 0
    assert "finished" in buf.getvalue()


def test_cli_watch_once(tmp_path, capsys):
    out, _result = _record(tmp_path)
    assert obs_main(["watch", str(out), "--once"]) == 0
    assert "finished" in capsys.readouterr().out


def test_cli_watch_missing_file_is_an_error(tmp_path, capsys):
    assert obs_main(["watch", str(tmp_path / "nope.jsonl"), "--once"]) == 2
    assert "error" in capsys.readouterr().err


def test_cli_critpath_json_deterministic(tmp_path, capsys):
    out, _result = _record(tmp_path)
    assert obs_main(["critpath", str(out), "--json"]) == 0
    first = capsys.readouterr().out
    assert obs_main(["critpath", str(out), "--json"]) == 0
    assert capsys.readouterr().out == first
    report = json.loads(first)
    assert report["path_length"] >= 1
    assert report["events"] == _result.run.committed
