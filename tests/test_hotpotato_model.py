"""Unit tests for model construction: injector placement, stats collection."""

from repro.core.engine import run_sequential
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.model import HotPotatoModel, choose_injectors
from repro.hotpotato.policy import BuschHotPotatoPolicy
from repro.net import MeshTopology, TorusTopology


def test_choose_injectors_exact_counts():
    for frac, expected in [(0.0, 0), (0.25, 16), (0.5, 32), (0.75, 48), (1.0, 64)]:
        cfg = HotPotatoConfig(n=8, injector_fraction=frac)
        assert sum(choose_injectors(cfg)) == expected


def test_choose_injectors_spread_evenly():
    cfg = HotPotatoConfig(n=8, injector_fraction=0.5)
    marks = choose_injectors(cfg)
    # Every aligned pair of routers contains exactly one injector.
    for i in range(0, 64, 2):
        assert sum(marks[i : i + 2]) == 1


def test_choose_injectors_probabilistic_mode():
    cfg = HotPotatoConfig(n=16, injector_fraction=0.5, exact_injectors=False)
    marks = choose_injectors(cfg)
    count = sum(marks)
    assert 0 < count < 256
    assert 256 * 0.3 < count < 256 * 0.7  # loose binomial bound
    # Deterministic under the layout seed.
    assert marks == choose_injectors(cfg)
    other = HotPotatoConfig(
        n=16, injector_fraction=0.5, exact_injectors=False, layout_seed=7
    )
    assert marks != choose_injectors(other)


def test_model_builds_dense_router_population():
    model = HotPotatoModel(HotPotatoConfig(n=4))
    lps = model.build()
    assert [lp.id for lp in lps] == list(range(16))
    assert model.grid == (4, 4)
    assert isinstance(model.topo, TorusTopology)


def test_mesh_mode():
    model = HotPotatoModel(HotPotatoConfig(n=4, torus=False))
    assert isinstance(model.topo, MeshTopology)
    result = run_sequential(model, 20.0)
    assert result.model_stats["delivered"] > 0


def test_default_policy_is_busch():
    model = HotPotatoModel(HotPotatoConfig(n=4))
    assert isinstance(model.policy, BuschHotPotatoPolicy)


def test_collect_stats_shape():
    cfg = HotPotatoConfig(n=4, duration=20.0, injector_fraction=0.5)
    result = run_sequential(HotPotatoModel(cfg), cfg.duration)
    ms = result.model_stats
    for key in (
        "delivered",
        "injected",
        "initial_packets",
        "avg_delivery_time",
        "avg_inject_wait",
        "max_inject_wait",
        "deflection_rate",
        "per_router",
        "policy",
    ):
        assert key in ms
    assert ms["policy"] == "busch"
    assert ms["n"] == 4
    assert ms["injectors"] == 8
    assert len(ms["per_router"]) == 16
    assert ms["initial_packets"] == 64  # full fill: 4 per router
