"""Unit tests for the four-priority hot-potato routing rules (§1.2.5)."""

import pytest

from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.packet import Priority
from repro.hotpotato.policy import (
    BuschHotPotatoPolicy,
    first_free,
    first_free_good,
)
from repro.net import Direction, TorusTopology
from repro.rng.streams import ReversibleStream

ALL_FREE = (True, True, True, True)
NONE_FREE = (False, False, False, False)


@pytest.fixture
def topo():
    return TorusTopology(8)


@pytest.fixture
def policy():
    return BuschHotPotatoPolicy()


def rng():
    return ReversibleStream(7)


def cfg(**kw):
    return HotPotatoConfig(n=8, **kw)


def freeze(*dirs):
    """Free mask with only the given directions free."""
    return tuple(d in dirs for d in range(4))


# ----------------------------------------------------------------------
# Helper selectors.
# ----------------------------------------------------------------------
def test_first_free_good_prefers_row_progress(topo):
    node, dest = topo.node_id(0, 0), topo.node_id(2, 2)
    assert first_free_good(topo, node, dest, ALL_FREE) == Direction.EAST
    # Row link busy → column progress.
    mask = freeze(Direction.NORTH, Direction.SOUTH, Direction.WEST)
    assert first_free_good(topo, node, dest, mask) == Direction.SOUTH


def test_first_free_good_none_when_blocked(topo):
    node, dest = topo.node_id(0, 0), topo.node_id(2, 2)
    mask = freeze(Direction.NORTH, Direction.WEST)  # both bad links
    assert first_free_good(topo, node, dest, mask) is None


def test_first_free_avoid_preference():
    mask = freeze(Direction.NORTH, Direction.WEST)
    assert first_free(mask, avoid=Direction.NORTH) == Direction.WEST
    only = freeze(Direction.NORTH)
    assert first_free(only, avoid=Direction.NORTH) == Direction.NORTH
    assert first_free(NONE_FREE) is None


# ----------------------------------------------------------------------
# Sleeping.
# ----------------------------------------------------------------------
def test_sleeping_takes_good_link(topo, policy):
    node, dest = topo.node_id(0, 0), topo.node_id(0, 3)
    out = policy.route(
        topo, node, dest, Priority.SLEEPING, ALL_FREE, rng(), cfg()
    )
    assert out.direction == Direction.EAST
    assert not out.deflected


def test_sleeping_upgrade_probability_is_applied(topo, policy):
    node, dest = topo.node_id(0, 0), topo.node_id(0, 3)
    # Force the upgrade chance to certainty / impossibility via the scale.
    sure = cfg(sleeping_upgrade_scale=1e-9)
    out = policy.route(topo, node, dest, Priority.SLEEPING, ALL_FREE, rng(), sure)
    assert out.new_priority == Priority.ACTIVE and out.upgraded
    never = cfg(sleeping_upgrade_scale=1e9)
    out = policy.route(topo, node, dest, Priority.SLEEPING, ALL_FREE, rng(), never)
    assert out.new_priority == Priority.SLEEPING and not out.upgraded


def test_sleeping_upgrade_chance_even_when_deflected(topo, policy):
    node, dest = topo.node_id(0, 0), topo.node_id(0, 3)
    mask = freeze(Direction.WEST)  # only a bad link free
    sure = cfg(sleeping_upgrade_scale=1e-9)
    out = policy.route(topo, node, dest, Priority.SLEEPING, mask, rng(), sure)
    assert out.deflected and out.new_priority == Priority.ACTIVE


def test_sleeping_draws_exactly_one_random_number(topo, policy):
    node, dest = topo.node_id(0, 0), topo.node_id(0, 3)
    stream = rng()
    policy.route(topo, node, dest, Priority.SLEEPING, ALL_FREE, stream, cfg())
    assert stream.count == 1


# ----------------------------------------------------------------------
# Active.
# ----------------------------------------------------------------------
def test_active_good_route_no_draw(topo, policy):
    node, dest = topo.node_id(0, 0), topo.node_id(0, 3)
    stream = rng()
    out = policy.route(topo, node, dest, Priority.ACTIVE, ALL_FREE, stream, cfg())
    assert not out.deflected
    assert out.new_priority == Priority.ACTIVE
    assert stream.count == 0  # upgrade chance only on deflection


def test_active_deflection_may_excite(topo, policy):
    node, dest = topo.node_id(0, 0), topo.node_id(0, 3)
    mask = freeze(Direction.NORTH)
    sure = cfg(active_upgrade_scale=1e-9)
    out = policy.route(topo, node, dest, Priority.ACTIVE, mask, rng(), sure)
    assert out.deflected and out.new_priority == Priority.EXCITED and out.upgraded
    never = cfg(active_upgrade_scale=1e9)
    out = policy.route(topo, node, dest, Priority.ACTIVE, mask, rng(), never)
    assert out.deflected and out.new_priority == Priority.ACTIVE


# ----------------------------------------------------------------------
# Excited.
# ----------------------------------------------------------------------
def test_excited_success_promotes_to_running(topo, policy):
    node, dest = topo.node_id(0, 0), topo.node_id(2, 3)
    out = policy.route(topo, node, dest, Priority.EXCITED, ALL_FREE, rng(), cfg())
    assert out.direction == topo.homerun_dir(node, dest) == Direction.EAST
    assert out.new_priority == Priority.RUNNING
    assert out.upgraded and not out.deflected


def test_excited_deflection_demotes_to_active(topo, policy):
    node, dest = topo.node_id(0, 0), topo.node_id(0, 3)
    mask = freeze(Direction.SOUTH)  # home-run (EAST) busy
    out = policy.route(topo, node, dest, Priority.EXCITED, mask, rng(), cfg())
    assert out.deflected and out.demoted
    assert out.new_priority == Priority.ACTIVE


def test_excited_uses_no_randomness(topo, policy):
    node, dest = topo.node_id(0, 0), topo.node_id(2, 3)
    stream = rng()
    policy.route(topo, node, dest, Priority.EXCITED, ALL_FREE, stream, cfg())
    assert stream.count == 0


# ----------------------------------------------------------------------
# Running.
# ----------------------------------------------------------------------
def test_running_stays_running_on_homerun(topo, policy):
    node, dest = topo.node_id(0, 2), topo.node_id(4, 2)  # column phase
    out = policy.route(topo, node, dest, Priority.RUNNING, ALL_FREE, rng(), cfg())
    assert out.direction == Direction.SOUTH
    assert out.new_priority == Priority.RUNNING
    assert not out.upgraded  # no transition: it was already Running


def test_running_deflected_while_turning_demotes(topo, policy):
    node, dest = topo.node_id(0, 2), topo.node_id(3, 2)
    assert topo.is_turning(node, dest)
    mask = freeze(Direction.NORTH)  # wanted SOUTH
    out = policy.route(topo, node, dest, Priority.RUNNING, mask, rng(), cfg())
    assert out.deflected and out.demoted and out.turning
    assert out.new_priority == Priority.ACTIVE


def test_running_straight_not_turning_flag(topo, policy):
    node, dest = topo.node_id(0, 0), topo.node_id(0, 3)  # row phase
    out = policy.route(topo, node, dest, Priority.RUNNING, ALL_FREE, rng(), cfg())
    assert not out.turning


def test_blocked_homerun_still_prefers_good_link(topo, policy):
    node, dest = topo.node_id(0, 0), topo.node_id(2, 3)
    mask = freeze(Direction.SOUTH, Direction.WEST)  # EAST busy; SOUTH good
    out = policy.route(topo, node, dest, Priority.RUNNING, mask, rng(), cfg())
    assert out.direction == Direction.SOUTH
    assert out.demoted  # knocked off the home-run path → back to Active
    assert not out.deflected  # but the hop still made progress


def test_blocked_homerun_with_no_good_link_deflects(topo, policy):
    node, dest = topo.node_id(0, 0), topo.node_id(0, 3)  # pure row path
    mask = freeze(Direction.NORTH)  # only a bad link free
    out = policy.route(topo, node, dest, Priority.RUNNING, mask, rng(), cfg())
    assert out.direction == Direction.NORTH
    assert out.demoted and out.deflected
