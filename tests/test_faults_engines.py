"""Engine-level fault-injection guarantees.

Three contracts, in rising order of subtlety:

1. **Faults-off bit-identity** — with no plan attached, the engines run
   byte-for-byte the committed sequence they ran before the fault
   subsystem existed (pinned by ``tests/data/golden_hotpotato.json``,
   generated from the pre-fault tree).
2. **Model-fault determinism** — the same plan + seed produces identical
   committed results on the sequential, optimistic and conservative
   engines: fault schedules are pure functions of the step.
3. **Engine-fault transparency** — transport drop/duplicate/delay and PE
   stalls perturb scheduling only; committed sequences still match the
   oracle exactly, while the fault counters prove the chaos actually
   happened.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.core.config import EngineConfig
from repro.core.conservative import ConservativeConfig, run_conservative
from repro.core.engine import run_sequential
from repro.core.optimistic import run_optimistic
from repro.core.trace import Tracer
from repro.faults import EngineFaults, FaultPlan, PEStall, generate_plan
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.model import HotPotatoModel
from repro.net import TorusTopology

GOLDEN = Path(__file__).parent / "data" / "golden_hotpotato.json"

#: First 20 RouterStats slots — the pre-fault signature layout the golden
#: fixture was generated with (the three fault counters were appended
#: after them, so trimming makes signatures comparable across the change).
PRISTINE_SIG_LEN = 20


def _run_golden_scenario(engine: str):
    golden = json.loads(GOLDEN.read_text())
    sc = golden["scenario"]
    cfg = HotPotatoConfig(
        n=sc["n"], duration=sc["duration"], injector_fraction=sc["injector_fraction"]
    )
    tracer = Tracer()
    if engine == "sequential":
        result = run_sequential(
            HotPotatoModel(cfg), cfg.duration, seed=sc["seed"], tracer=tracer
        )
    else:
        opt = sc["opt"]
        ecfg = EngineConfig(
            end_time=cfg.duration,
            n_pes=opt["n_pes"],
            n_kps=opt["n_kps"],
            batch_size=opt["batch_size"],
            seed=sc["seed"],
        )
        result = run_optimistic(HotPotatoModel(cfg), ecfg, tracer=tracer)
    return golden, result, tracer.committed_sequence()


def _sha(obj) -> str:
    return hashlib.sha256(json.dumps(obj, sort_keys=True).encode()).hexdigest()


@pytest.mark.parametrize("engine", ["sequential", "optimistic"])
def test_faults_off_bit_identical_to_pre_fault_tree(engine):
    golden, result, seq = _run_golden_scenario(engine)
    assert len(seq) == golden["committed_events"]
    assert _sha(seq) == golden["committed_sequence_sha256"]
    assert result.run.committed == golden[f"{engine}_committed"]
    ms = dict(result.model_stats)
    per_router = ms.pop("per_router")
    trimmed = [list(sig[:PRISTINE_SIG_LEN]) for sig in per_router]
    assert (
        hashlib.sha256(json.dumps(trimmed).encode()).hexdigest()
        == golden["per_router_sha256"]
    )
    for key, want in golden["model_stats"].items():
        got = ms[key]
        assert (list(got) if isinstance(got, tuple) else got) == want, key
    # The appended fault counters must all be zero on an unfaulted run.
    assert all(all(v == 0 for v in sig[PRISTINE_SIG_LEN:]) for sig in per_router)
    assert ms["fault_dropped"] == 0 and ms["fault_deflections"] == 0
    run = result.run
    assert run.transport_dropped == 0 and run.pe_stall_rounds == 0


# ----------------------------------------------------------------------
# Cross-engine determinism under faults.
# ----------------------------------------------------------------------
CFG = HotPotatoConfig(n=8, duration=25.0, injector_fraction=1.0)
SEED = 0x5EED


def _model_plan():
    return generate_plan(
        TorusTopology(CFG.n),
        duration=CFG.duration,
        link_fail_rate=0.1,
        heal_after=8,
        router_crash_rate=0.08,
        recover_after=6,
        seed=0xD00D,
    )


def _committed(tracer):
    return tracer.committed_sequence()


def test_model_faults_identical_across_all_engines():
    plan = _model_plan()
    assert plan.events, "plan unexpectedly empty — rates/seed drifted"

    seq_tr = Tracer()
    seq = run_sequential(
        HotPotatoModel(CFG, fault_plan=plan), CFG.duration, seed=SEED, tracer=seq_tr
    )

    opt_tr = Tracer()
    ecfg = EngineConfig(
        end_time=CFG.duration, n_pes=4, n_kps=16, batch_size=16, seed=SEED
    )
    opt = run_optimistic(HotPotatoModel(CFG, fault_plan=plan), ecfg, tracer=opt_tr)
    assert _committed(seq_tr) == _committed(opt_tr)
    assert seq.model_stats == opt.model_stats

    for sync in ("yawns", "null"):
        ccfg = ConservativeConfig(end_time=CFG.duration, n_pes=4, sync=sync, seed=SEED)
        cons = run_conservative(HotPotatoModel(CFG, fault_plan=plan), ccfg)
        assert cons.model_stats == seq.model_stats, sync

    # Faults actually bit: something was dropped or fault-deflected.
    ms = seq.model_stats
    assert ms["fault_dropped"] > 0 or ms["fault_deflections"] > 0
    assert ms["fault_events"] == len(plan.events)


def test_crashed_router_drops_in_flight_packets():
    # A mid-run crash catches packets already in flight toward the node
    # (neighbors only mask the link from the crash step onward, so
    # anything sent the step before arrives at a dead router and drops).
    from repro.faults import CRASH, FaultEvent

    plan = FaultPlan(events=(FaultEvent(3, CRASH, 27),))
    seq = run_sequential(HotPotatoModel(CFG, fault_plan=plan), CFG.duration, seed=SEED)
    ms = seq.model_stats
    assert ms["fault_dropped_crash"] > 0
    assert ms["fault_dropped"] == ms["fault_dropped_crash"] + ms["fault_dropped_no_link"]


def test_transport_faults_do_not_change_committed_sequence():
    plan = FaultPlan(drop_rate=0.05, dup_rate=0.05, delay_rate=0.08, delay_rounds=2)

    seq_tr = Tracer()
    run_sequential(HotPotatoModel(CFG), CFG.duration, seed=SEED, tracer=seq_tr)

    opt_tr = Tracer()
    ecfg = EngineConfig(
        end_time=CFG.duration, n_pes=4, n_kps=16, batch_size=16, seed=SEED
    )
    opt = run_optimistic(
        HotPotatoModel(CFG), ecfg, tracer=opt_tr, faults=EngineFaults(plan)
    )
    assert _committed(seq_tr) == _committed(opt_tr)
    run = opt.run
    perturbed = run.transport_dropped + run.transport_duplicated + run.transport_delayed
    assert perturbed > 0, "transport fault rates never fired — test is vacuous"


def test_pe_stalls_do_not_change_committed_results():
    plan = FaultPlan(
        stalls=(PEStall(0, 2, 4), PEStall(2, 5, 3), PEStall(3, 1, 2))
    )
    seq = run_sequential(HotPotatoModel(CFG), CFG.duration, seed=SEED)
    ecfg = EngineConfig(
        end_time=CFG.duration, n_pes=4, n_kps=16, batch_size=16, seed=SEED
    )
    opt = run_optimistic(HotPotatoModel(CFG), ecfg, faults=EngineFaults(plan))
    assert opt.model_stats == seq.model_stats
    assert opt.run.pe_stall_rounds > 0

    for sync in ("yawns", "null"):
        ccfg = ConservativeConfig(end_time=CFG.duration, n_pes=4, sync=sync, seed=SEED)
        cons = run_conservative(
            HotPotatoModel(CFG), ccfg, faults=EngineFaults(plan)
        )
        assert cons.model_stats == seq.model_stats, sync
        assert cons.run.pe_stall_rounds > 0, sync


def test_everything_at_once_stays_deterministic():
    # Model faults + transport chaos + stalls, optimistic vs oracle.
    plan = generate_plan(
        TorusTopology(CFG.n),
        duration=CFG.duration,
        link_fail_rate=0.08,
        heal_after=10,
        router_crash_rate=0.05,
        recover_after=8,
        drop_rate=0.03,
        dup_rate=0.03,
        delay_rate=0.04,
        stalls=(PEStall(1, 3, 3),),
        seed=0xABBA,
    )
    seq_tr = Tracer()
    run_sequential(
        HotPotatoModel(CFG, fault_plan=plan), CFG.duration, seed=SEED, tracer=seq_tr
    )
    opt_tr = Tracer()
    ecfg = EngineConfig(
        end_time=CFG.duration, n_pes=4, n_kps=16, batch_size=16, seed=SEED
    )
    run_optimistic(
        HotPotatoModel(CFG, fault_plan=plan),
        ecfg,
        tracer=opt_tr,
        faults=EngineFaults(plan),
    )
    assert _committed(seq_tr) == _committed(opt_tr)


def test_empty_plan_attach_is_identity():
    ecfg = EngineConfig(
        end_time=CFG.duration, n_pes=4, n_kps=16, batch_size=16, seed=SEED
    )
    plain = run_optimistic(HotPotatoModel(CFG), ecfg)
    hooked = run_optimistic(
        HotPotatoModel(CFG), ecfg, faults=EngineFaults(FaultPlan())
    )
    assert hooked.model_stats == plain.model_stats
    assert hooked.run.committed == plain.run.committed
    assert hooked.run.pe_stall_rounds == 0


def test_rollback_strategies_agree_under_model_faults():
    # Copy-strategy rollback never runs reverse handlers, so the fault
    # bookkeeping in event.saved must not be load-bearing across
    # snapshots; both strategies must land on the oracle's results.
    plan = _model_plan()
    seq = run_sequential(
        HotPotatoModel(CFG, fault_plan=plan), CFG.duration, seed=SEED
    )
    for rollback in ("reverse", "copy"):
        ecfg = EngineConfig(
            end_time=CFG.duration,
            n_pes=4,
            n_kps=16,
            batch_size=16,
            seed=SEED,
            rollback=rollback,
        )
        opt = run_optimistic(HotPotatoModel(CFG, fault_plan=plan), ecfg)
        assert opt.model_stats == seq.model_stats, rollback
