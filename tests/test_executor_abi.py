"""Executor-ABI conformance: vectorized stepping is bit-identical to scalar.

The contract (docs/KERNEL.md, "Executor ABI & vectorized stepping"): for
every engine, golden seed, fault plan and checkpoint kill/resume
combination, ``executor="vectorized"`` must commit exactly the event
sequence the scalar executor commits.  Two observation levels:

* **Committed sequence** — with a :class:`~repro.core.trace.Tracer`
  attached the Time Warp kernel keeps its generic execute path, so this
  level exercises the SoA LPs' scalar handlers event by event and
  compares the full committed ``(ts, lp, seq, kind)`` sequence.
* **Committed fingerprint** — without a tracer the kernel installs the
  fused band-stepping batch (the true vectorized fast path); the
  model statistics include per-router event fingerprints, so any
  divergence in committed event content or order shows up.
"""

import shutil

import pytest

from repro.ckpt import Checkpointer, list_snapshots
from repro.core.config import EngineConfig
from repro.core.conservative import ConservativeConfig, ConservativeKernel
from repro.core.engine import SequentialEngine
from repro.core.optimistic import TimeWarpKernel
from repro.core.trace import Tracer
from repro.faults import generate_plan
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.model import HotPotatoModel
from repro.net import TorusTopology

N = 4
DURATION = 12.0
GOLDEN_SEEDS = (7, 0x5EED)


def _cfg() -> HotPotatoConfig:
    return HotPotatoConfig(n=N, duration=DURATION, injector_fraction=1.0)


def _fault_plan():
    return generate_plan(
        TorusTopology(N),
        duration=DURATION,
        link_fail_rate=0.02,
        heal_after=5,
        router_crash_rate=0.01,
        recover_after=4,
        seed=77,
    )


def _model(faulted: bool) -> HotPotatoModel:
    return HotPotatoModel(_cfg(), fault_plan=_fault_plan() if faulted else None)


def _engine(engine: str, executor: str, seed: int, faulted: bool):
    model = _model(faulted)
    if engine == "seq":
        return SequentialEngine(model, DURATION, seed=seed, executor=executor)
    if engine == "cons":
        ccfg = ConservativeConfig(
            end_time=DURATION, n_pes=4, sync="yawns", seed=seed,
            lookahead=model.lookahead, executor=executor,
        )
        return ConservativeKernel(model, ccfg)
    ecfg = EngineConfig(
        end_time=DURATION, n_pes=4, n_kps=16, batch_size=16, seed=seed,
        executor=executor,
    )
    return TimeWarpKernel(model, ecfg)


@pytest.mark.parametrize("faulted", [False, True], ids=["clean", "faultplan"])
@pytest.mark.parametrize("seed", GOLDEN_SEEDS)
@pytest.mark.parametrize("engine", ["seq", "cons", "opt"])
def test_committed_sequence_identical(engine, seed, faulted):
    """Traced runs: the full committed event sequence matches scalar."""
    sequences = {}
    stats = {}
    for executor in ("scalar", "vectorized"):
        tracer = Tracer()
        eng = _engine(engine, executor, seed, faulted).attach_tracer(tracer)
        stats[executor] = eng.run().model_stats
        sequences[executor] = tracer.committed_sequence()
    assert sequences["vectorized"] == sequences["scalar"]
    assert stats["vectorized"] == stats["scalar"]


@pytest.mark.parametrize("faulted", [False, True], ids=["clean", "faultplan"])
@pytest.mark.parametrize("seed", GOLDEN_SEEDS)
@pytest.mark.parametrize("engine", ["seq", "cons", "opt"])
def test_committed_fingerprint_identical_untraced(engine, seed, faulted):
    """Untraced runs (the fused fast path on opt) match scalar exactly."""
    results = {
        executor: _engine(engine, executor, seed, faulted).run()
        for executor in ("scalar", "vectorized")
    }
    assert (
        results["vectorized"].model_stats == results["scalar"].model_stats
    )
    assert results["vectorized"].run.committed == results["scalar"].run.committed
    if engine == "opt":
        # The vectorized kernel actually took the fused band path...
        assert results["vectorized"].run.soa_batches > 0
        assert (
            results["vectorized"].run.soa_lps_stepped
            == results["vectorized"].run.processed
        )
        # ...and the scalar kernel did not.
        assert results["scalar"].run.soa_batches == 0
        assert results["scalar"].run.soa_lps_stepped == 0


@pytest.mark.parametrize("overrides", [
    {"queue": "ladder"},
    {"queue": "splay"},
    {"cancellation": "lazy"},
    {"rollback": "copy"},
], ids=["ladder", "splay", "lazy", "copy"])
def test_vectorized_across_scheduler_structures(overrides):
    """The SoA population commits identically under every scheduler
    structure — including the lazy/copy configurations where the kernel
    falls back from the fused band batch to the scalar batch."""
    def run(executor):
        ecfg = EngineConfig(
            end_time=DURATION, n_pes=4, n_kps=16, batch_size=16,
            seed=GOLDEN_SEEDS[0], executor=executor, **overrides,
        )
        return TimeWarpKernel(_model(True), ecfg).run()

    scalar, vectorized = run("scalar"), run("vectorized")
    assert vectorized.model_stats == scalar.model_stats
    fused_expected = "cancellation" not in overrides and "rollback" not in overrides
    assert (vectorized.run.soa_batches > 0) == fused_expected


@pytest.mark.parametrize("engine", ["seq", "opt"])
def test_vectorized_checkpoint_kill_resume(tmp_path, engine):
    """Kill at every snapshot boundary, resume, and land on the scalar
    oracle's exact committed statistics (SoA state round-trips through
    the snapshot format)."""
    seed = GOLDEN_SEEDS[0]
    oracle = _engine(engine, "scalar", seed, False).run()
    marker = {"case": f"vec-{engine}"}

    snap_dir = tmp_path / "snaps"
    ckpt = Checkpointer(snap_dir, every=1, marker=marker, seq_events=64)
    recorded = (
        _engine(engine, "vectorized", seed, False)
        .attach_checkpointer(ckpt)
        .run()
    )
    assert recorded.model_stats == oracle.model_stats
    snaps = list_snapshots(snap_dir)
    assert len(snaps) > 3

    for snap in snaps:
        d = tmp_path / f"resume_{snap.stem}"
        d.mkdir()
        shutil.copy(snap, d / snap.name)
        ck = Checkpointer(d, every=1 << 30, marker=marker, seq_events=64)
        ck.load_latest()
        resumed = (
            _engine(engine, "vectorized", seed, False)
            .attach_checkpointer(ck)
            .run()
        )
        assert resumed.model_stats == oracle.model_stats, (
            f"resume from {snap.name} diverged from the scalar oracle"
        )


def test_cross_executor_resume_refused(tmp_path):
    """A snapshot only restores into the executor mode that wrote it:
    the scalar and SoA populations carry different event-payload layouts,
    so a cross-mode restore is refused up front rather than failing
    somewhere inside a handler."""
    from repro.errors import SnapshotError

    seed = GOLDEN_SEEDS[0]
    marker = {"case": "cross"}
    snap_dir = tmp_path / "snaps"
    ckpt = Checkpointer(snap_dir, every=1, marker=marker, seq_events=64)
    _engine("opt", "vectorized", seed, False).attach_checkpointer(ckpt).run()
    snaps = list_snapshots(snap_dir)
    mid = snaps[len(snaps) // 2]
    d = tmp_path / "resume_scalar"
    d.mkdir()
    shutil.copy(mid, d / mid.name)
    ck = Checkpointer(d, every=1 << 30, marker=marker, seq_events=64)
    ck.load_latest()
    with pytest.raises(SnapshotError, match="executor"):
        _engine("opt", "scalar", seed, False).attach_checkpointer(ck)


def test_vectorized_declines_without_plan():
    """Models without a vectorized build fall back to scalar silently."""
    from repro.core.optimistic import run_optimistic
    from repro.models.phold import PholdConfig, PholdModel

    ecfg = EngineConfig(
        end_time=10.0, n_pes=2, n_kps=4, seed=7, executor="vectorized"
    )
    scalar = run_optimistic(
        PholdModel(PholdConfig(n_lps=16, jobs_per_lp=2)),
        EngineConfig(end_time=10.0, n_pes=2, n_kps=4, seed=7),
    )
    vectorized = run_optimistic(
        PholdModel(PholdConfig(n_lps=16, jobs_per_lp=2)), ecfg
    )
    assert vectorized.model_stats == scalar.model_stats
    assert vectorized.run.soa_batches == 0


def test_vectorized_declines_on_mesh():
    """The hot-potato plan only covers the torus band layout; a mesh
    model runs the vectorized executor as scalar SoA-free fallback."""
    cfg = HotPotatoConfig(n=N, duration=DURATION, torus=False)
    assert HotPotatoModel(cfg).build_vectorized() is None
    ecfg = EngineConfig(
        end_time=DURATION, n_pes=4, n_kps=16, seed=7, executor="vectorized"
    )
    vectorized = TimeWarpKernel(HotPotatoModel(cfg), ecfg).run()
    scalar = TimeWarpKernel(
        HotPotatoModel(cfg),
        EngineConfig(end_time=DURATION, n_pes=4, n_kps=16, seed=7),
    ).run()
    assert vectorized.model_stats == scalar.model_stats
    assert vectorized.run.soa_batches == 0


def test_delivery_log_identical():
    """The commit-time delivery log (the one committed side effect beyond
    statistics) matches between executors on the fused fast path."""
    cfg = HotPotatoConfig(
        n=N, duration=DURATION, injector_fraction=1.0, delivery_log=True
    )
    logs = {}
    for executor in ("scalar", "vectorized"):
        model = HotPotatoModel(cfg)
        ecfg = EngineConfig(
            end_time=DURATION, n_pes=4, n_kps=16, batch_size=16,
            seed=GOLDEN_SEEDS[0], executor=executor,
        )
        TimeWarpKernel(model, ecfg).run()
        logs[executor] = sorted(model.delivery_log)
    assert logs["vectorized"] == logs["scalar"]
