"""The run supervisor: watchdog kills, retries, fallback, resume."""

import json
import pickle

import pytest

from repro.experiments.supervisor import (
    PointFailure,
    Supervisor,
    SupervisorConfig,
    point_id,
)


def _opt_spec(**extra) -> dict:
    spec = {
        "kind": "opt", "n": 4, "load": 1.0, "duration": 15.0, "seed": 7,
        "n_pes": 4, "n_kps": 16, "batch_size": 16, "window": None,
        "overrides": None, "fault": None, "telemetry": None,
        "checkpoint_every": 4,
    }
    spec.update(extra)
    return spec


def _seq_spec(**extra) -> dict:
    spec = {
        "kind": "seq", "n": 4, "load": 1.0, "duration": 15.0, "seed": 7,
        "fault": None, "telemetry": None, "checkpoint_every": 4,
    }
    spec.update(extra)
    return spec


def _manifest(sup) -> list[dict]:
    return [
        json.loads(line)
        for line in sup.manifest_path.read_text().splitlines()
        if line.strip()
    ]


def _oracle_stats():
    from repro.experiments.common import run_hotpotato_sequential

    return run_hotpotato_sequential(4, 1.0, 15.0, 7).model_stats


def test_point_id_is_canonical():
    a = {"kind": "seq", "n": 4, "seed": 7}
    b = {"seed": 7, "n": 4, "kind": "seq"}
    assert point_id(a) == point_id(b)
    assert point_id(a) != point_id(dict(a, seed=8))


def test_happy_path_journals_done(tmp_path):
    sup = Supervisor(SupervisorConfig(out_dir=tmp_path))
    try:
        res = sup.run_point(_seq_spec())
    finally:
        sup.close()
    assert res["model_stats"] == _oracle_stats()
    statuses = [d["status"] for d in _manifest(sup) if "point" in d]
    assert statuses == ["started", "done"]


def test_stalled_optimistic_point_falls_back_to_conservative(tmp_path):
    """A child that never heartbeats is SIGKILLed by the watchdog; after
    the retry budget, the supervisor substitutes the conservative engine
    and journals the substitution."""
    sup = Supervisor(
        SupervisorConfig(
            out_dir=tmp_path, heartbeat_timeout=1.0, max_retries=2,
            backoff_base=0.05, poll_interval=0.05,
        )
    )
    try:
        res = sup.run_point(_opt_spec(sabotage="stall"))
    finally:
        sup.close()
    assert res["run"].engine == "conservative"
    assert res["model_stats"] == _oracle_stats()
    docs = _manifest(sup)
    retries = [d for d in docs if d["status"] == "retry"]
    assert retries and all(d["outcome"] == "stall" for d in retries)
    fallbacks = [d for d in docs if d["status"] == "fallback"]
    assert len(fallbacks) == 1 and fallbacks[0]["engine"] == "cons"
    # The conservative twin spec must not inherit the sabotage hook.
    assert "sabotage" not in fallbacks[0]["spec"]


def test_stall_without_fallback_raises_point_failure(tmp_path):
    sup = Supervisor(
        SupervisorConfig(
            out_dir=tmp_path, heartbeat_timeout=1.0, max_retries=1,
            backoff_base=0.05, fallback=False, poll_interval=0.05,
        )
    )
    try:
        with pytest.raises(PointFailure):
            sup.run_point(_opt_spec(sabotage="stall"))
    finally:
        sup.close()
    assert [d["status"] for d in _manifest(sup) if "point" in d][-1] == "failed"


def test_flaky_point_succeeds_after_backoff_retries(tmp_path):
    """A child that crashes on its first two attempts succeeds on the
    third, inside one run_point call."""
    sup = Supervisor(
        SupervisorConfig(out_dir=tmp_path, max_retries=3, backoff_base=0.05)
    )
    spec = _seq_spec(sabotage={"flaky": 2})
    try:
        res = sup.run_point(spec)
    finally:
        sup.close()
    assert res["model_stats"] == _oracle_stats()
    done = [d for d in _manifest(sup) if d["status"] == "done"]
    assert done and done[0]["attempts"] == 3
    retries = [d for d in _manifest(sup) if d["status"] == "retry"]
    assert [d["attempt"] for d in retries] == [1, 2]
    assert retries[0]["backoff"] < retries[1]["backoff"]  # exponential


def test_resume_serves_done_points_without_rerunning(tmp_path):
    spec = _seq_spec()
    sup = Supervisor(SupervisorConfig(out_dir=tmp_path))
    try:
        first = sup.run_point(spec)
    finally:
        sup.close()

    # Poison the spec file: any re-run of the child would crash on it.
    pdir = tmp_path / "points" / point_id(spec)
    (pdir / "spec_seq.json").write_text("NOT JSON")

    sup2 = Supervisor(SupervisorConfig(out_dir=tmp_path, resume=True))
    try:
        again = sup2.run_point(spec)
    finally:
        sup2.close()
    assert again["model_stats"] == first["model_stats"]


def test_resume_restores_in_flight_point_from_checkpoints(tmp_path):
    """A point whose earlier attempt died mid-run resumes from its latest
    snapshot instead of starting over (snapshot seq numbers continue)."""
    # every=1 boundary cadence so the short run still writes several
    # snapshots (a sequential boundary is 1024 processed events).
    spec = _seq_spec(duration=40.0, checkpoint_every=1)
    sup = Supervisor(SupervisorConfig(out_dir=tmp_path))
    try:
        res = sup.run_point(spec)
    finally:
        sup.close()
    pdir = tmp_path / "points" / point_id(spec)
    snaps = sorted((pdir / "ckpt_seq").glob("*.rpsnap"))
    assert snaps, "child wrote no snapshots"

    # Simulate the in-flight crash: result gone, snapshots remain.
    (pdir / "result.pkl").unlink()
    for stale in snaps[len(snaps) // 2:]:
        stale.unlink()

    sup2 = Supervisor(SupervisorConfig(out_dir=tmp_path, resume=True))
    try:
        res2 = sup2.run_point(spec)
    finally:
        sup2.close()
    assert res2["model_stats"] == res["model_stats"]
    after = sorted((pdir / "ckpt_seq").glob("*.rpsnap"))
    # Continued from the surviving snapshot: the re-written tail continues
    # its numbering rather than restarting at ckpt_000000.
    assert len(after) == len(snaps)


def test_meta_roundtrip(tmp_path):
    sup = Supervisor(SupervisorConfig(out_dir=tmp_path))
    sup.journal_meta(experiments=["fig3"], params={"sizes": [4], "seed": 7})
    sup.close()
    sup2 = Supervisor(SupervisorConfig(out_dir=tmp_path, resume=True))
    meta = sup2.read_meta()
    sup2.close()
    assert meta["experiments"] == ["fig3"]
    assert meta["params"]["sizes"] == [4]


def test_result_pickle_shape(tmp_path):
    """The child's result file holds exactly the stats the sweep needs."""
    spec = _seq_spec()
    sup = Supervisor(SupervisorConfig(out_dir=tmp_path))
    try:
        sup.run_point(spec)
    finally:
        sup.close()
    with (tmp_path / "points" / point_id(spec) / "result.pkl").open("rb") as fh:
        doc = pickle.load(fh)
    assert set(doc) == {"model_stats", "run"}
    assert doc["run"].committed > 0
