"""Tests for the ``python -m repro.obs`` forensics CLI."""

import json

import pytest

from repro.obs.__main__ import main
from tests.test_obs_recorder import record_run


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One seeded sequential and one seeded optimistic recording."""
    root = tmp_path_factory.mktemp("obs_cli")
    seq = root / "seq.jsonl"
    opt = root / "opt.jsonl"
    record_run(seq, parallel=False, seed=7)
    record_run(opt, parallel=True, seed=7)
    return seq, opt


def test_summary(recorded, capsys):
    _, opt = recorded
    assert main(["summary", str(opt)]) == 0
    out = capsys.readouterr().out
    assert "engine" in out and "optimistic" in out
    assert "trace records" in out and "run stats" in out
    assert "throttle_final_factor" in out  # satellite: as_dict carries it


def test_timeline_renders_charts(recorded, capsys):
    _, opt = recorded
    assert main(["timeline", str(opt)]) == 0
    out = capsys.readouterr().out
    assert "[rate] vs GVT" in out
    assert "committed/interval" in out  # series legend rendered
    assert " | " in out or " |" in out  # chart y-axis rendered


def test_timeline_metric_filter(recorded, capsys):
    _, opt = recorded
    assert main(["timeline", str(opt), "--metric", "throttle"]) == 0
    out = capsys.readouterr().out
    assert "[throttle] vs GVT" in out
    assert "[rate]" not in out


def test_timeline_without_metrics_fails(tmp_path, capsys):
    path = tmp_path / "trace_only.jsonl"
    record_run(path, parallel=True, metrics=False)
    assert main(["timeline", str(path)]) == 1
    assert "no metric samples" in capsys.readouterr().out


def test_thrash_reports_hot_spots(recorded, capsys):
    _, opt = recorded
    assert main(["thrash", str(opt)]) == 0
    out = capsys.readouterr().out
    assert "events undone per LP" in out
    assert "events rolled back per KP" in out
    assert "rollback chains" in out


def test_thrash_on_sequential_run(recorded, capsys):
    seq, _ = recorded
    assert main(["thrash", str(seq)]) == 0
    assert "no rollback activity" in capsys.readouterr().out


def test_diff_equivalent_runs_exit_zero(recorded, capsys):
    seq, opt = recorded
    assert main(["diff", str(seq), str(opt)]) == 0
    out = capsys.readouterr().out
    assert "committed sequences: EQUAL" in out
    assert "verdict: EQUIVALENT" in out


def test_diff_strict_fails_on_engine_dependent(recorded, capsys):
    seq, opt = recorded
    assert main(["diff", str(seq), str(opt), "--strict"]) == 1
    assert "verdict: DIVERGENT" in capsys.readouterr().out


def test_diff_different_seeds_exit_nonzero(recorded, tmp_path, capsys):
    _, opt = recorded
    other = tmp_path / "other_seed.jsonl"
    record_run(other, parallel=True, seed=8)
    assert main(["diff", str(opt), str(other)]) == 1
    out = capsys.readouterr().out
    assert "committed sequences: DIFFERENT" in out
    assert "verdict: DIVERGENT" in out


def test_diff_perturbed_file_exit_nonzero(recorded, tmp_path, capsys):
    """Flipping one committed timestamp in the file must fail the diff."""
    _, opt = recorded
    perturbed = tmp_path / "perturbed.jsonl"
    lines = opt.read_text().splitlines()
    out_lines, flipped = [], False
    for line in lines:
        doc = json.loads(line)
        if not flipped and doc.get("t") == "trace" and doc["a"] == "COMMIT":
            doc["ts"] += 0.5
            line = json.dumps(doc)
            flipped = True
        out_lines.append(line)
    perturbed.write_text("\n".join(out_lines) + "\n")
    assert main(["diff", str(opt), str(perturbed)]) == 1
    assert "DIFFERENT" in capsys.readouterr().out


def test_missing_file_exits_two(tmp_path, capsys):
    assert main(["summary", str(tmp_path / "nope.jsonl")]) == 2
    assert "error:" in capsys.readouterr().err


def test_corrupt_file_exits_two(tmp_path, capsys):
    path = tmp_path / "corrupt.jsonl"
    path.write_text("definitely not json\n")
    assert main(["summary", str(path)]) == 2
    assert "error:" in capsys.readouterr().err
