"""Unit tests for engine configuration validation."""

import pytest

from repro.core.config import EngineConfig
from repro.errors import ConfigurationError


def test_defaults_valid():
    cfg = EngineConfig(end_time=10.0)
    assert cfg.n_pes == 1
    assert cfg.rollback == "reverse"
    assert cfg.transport == "immediate"
    assert cfg.gvt == "synchronous"
    assert cfg.window is None


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(end_time=0.0),
        dict(end_time=-1.0),
        dict(end_time=10.0, n_pes=0),
        dict(end_time=10.0, n_pes=4, n_kps=2),
        dict(end_time=10.0, batch_size=0),
        dict(end_time=10.0, gvt_interval=0),
        dict(end_time=10.0, window=0.0),
        dict(end_time=10.0, window=-1.0),
    ],
)
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        EngineConfig(**kwargs)


def test_frozen():
    cfg = EngineConfig(end_time=1.0)
    with pytest.raises(AttributeError):
        cfg.end_time = 2.0
