"""Property tests for the scheduler structures and cancellation modes.

Two families of randomized/parametrized contracts:

1. **Queue equivalence** — the ladder queue (and the splay tree) must be
   observationally identical to the binary heap under arbitrary
   interleavings of push / pop / pop_below / cancellation, *including*
   timestamp ties and full-key ties (two events with the same
   ``(ts, origin, seq)``, ordered by creation serial).  A seeded twin
   harness drives both structures with identical event populations and
   asserts every observable (pop order, ``peek_key``, ``len``) matches
   step for step.

2. **Cancellation-mode bit-identity** — lazy cancellation, the ladder
   queue and incremental GVT are pure performance choices: committed
   event sequences must be bit-identical to the heap/aggressive/
   synchronous baseline on the golden seeds, including under a
   :class:`~repro.faults.FaultPlan` and across a checkpoint resume.
   Comparison uses :meth:`~repro.core.trace.Tracer.committed_sequence`
   (key-sorted; cross-KP commit *firing* order is not contractual).
"""

import random
import shutil

import pytest

from repro.ckpt import Checkpointer, list_snapshots
from repro.core.config import EngineConfig
from repro.core.event import Event
from repro.core.optimistic import TimeWarpKernel, run_optimistic
from repro.core.queue import make_pending_queue
from repro.core.trace import Tracer
from repro.faults import EngineFaults, FaultPlan
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.model import HotPotatoModel
from repro.models.phold import PholdConfig, PholdModel
from repro.vt.time import EventKey

# ----------------------------------------------------------------------
# 1. Randomized queue-equivalence twin harness.
# ----------------------------------------------------------------------


def _twin_pair(ts, origin, seq):
    """Two events with the same key, created back to back so the global
    creation serial (the final tie-break) orders them consistently
    within each population."""
    return (
        Event(EventKey(ts, origin, seq), 0, "k"),
        Event(EventKey(ts, origin, seq), 0, "k"),
    )


class _TwinHarness:
    """Drives a reference heap and a candidate queue with twin event
    populations and checks every observable after each operation."""

    def __init__(self, candidate: str, rng: random.Random):
        self.rng = rng
        self.heap = make_pending_queue("heap")
        self.cand = make_pending_queue(candidate)
        self.pair_id = {}  # id(event) -> pair index, either population
        self.live = {}  # pair index -> (heap_ev, cand_ev)
        self.n_pairs = 0
        self.popped = []  # sequence of popped pair indices

    # Coarse grids force plenty of timestamp ties and full-key ties.
    def _key(self):
        r = self.rng
        return r.randrange(64) / 8.0, r.randrange(4), r.randrange(4)

    def push(self):
        a, b = _twin_pair(*self._key())
        i = self.n_pairs
        self.n_pairs += 1
        self.pair_id[id(a)] = self.pair_id[id(b)] = i
        self.live[i] = (a, b)
        self.heap.push(a)
        self.cand.push(b)

    def pop(self):
        if not self.live:
            return
        a = self.heap.pop()
        b = self.cand.pop()
        i = self.pair_id[id(a)]
        assert self.pair_id[id(b)] == i, "pop order diverged"
        assert b.entry[:3] == a.entry[:3]
        del self.live[i]
        self.popped.append(i)

    def pop_below(self):
        limit = self.rng.randrange(64) / 8.0
        a = self.heap.pop_below(limit)
        b = self.cand.pop_below(limit)
        if a is None:
            assert b is None, f"pop_below({limit}) found an event only in candidate"
            return
        assert b is not None, f"pop_below({limit}) found an event only in heap"
        i = self.pair_id[id(a)]
        assert self.pair_id[id(b)] == i, "pop_below order diverged"
        del self.live[i]
        self.popped.append(i)

    def cancel(self):
        if not self.live:
            return
        i = self.rng.choice(sorted(self.live))
        a, b = self.live.pop(i)
        a.cancelled = b.cancelled = True
        self.heap.note_cancelled()
        self.cand.note_cancelled()

    def check_observables(self):
        assert len(self.heap) == len(self.cand) == len(self.live)
        assert bool(self.heap) == bool(self.cand)
        assert self.heap.peek_key() == self.cand.peek_key()
        hk, ck = self.heap.peek(), self.cand.peek()
        if hk is None:
            assert ck is None
        else:
            assert self.pair_id[id(hk)] == self.pair_id[id(ck)]


@pytest.mark.parametrize("candidate", ["ladder", "splay"])
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_queue_matches_heap_under_random_interleavings(candidate, seed):
    rng = random.Random(seed)
    h = _TwinHarness(candidate, rng)
    ops = (
        [h.push] * 5  # keep the structure populated
        + [h.pop] * 2
        + [h.pop_below] * 2
        + [h.cancel] * 2
    )
    for _ in range(400):
        rng.choice(ops)()
        h.check_observables()
    # Drain completely: the tail order must match too.
    while h.live:
        h.pop()
        h.check_observables()
    assert len(h.popped) == len(set(h.popped)), "an event popped twice"
    assert h.n_pairs > 100, "harness barely exercised the structures"


@pytest.mark.parametrize("candidate", ["ladder", "splay"])
def test_queue_full_key_ties_break_by_creation_order(candidate):
    """Many events sharing one exact key drain in creation order from
    both structures (the entry-tuple serial is the only discriminator)."""
    heap, cand = make_pending_queue("heap"), make_pending_queue(candidate)
    pairs = [_twin_pair(1.0, 0, 0) for _ in range(32)]
    for a, b in pairs:
        heap.push(a)
        cand.push(b)
    for a, b in pairs:
        assert heap.pop() is a
        assert cand.pop() is b


# ----------------------------------------------------------------------
# 2. Cancellation-mode / queue / GVT bit-identity on the golden seeds.
# ----------------------------------------------------------------------

GOLDEN_SEEDS = (0x5EED, 7)

_PHOLD = PholdConfig(n_lps=36, jobs_per_lp=3, lookahead=0.05, remote_fraction=0.7)
_PHOLD_END = 15.0

_HP_CFG = HotPotatoConfig(n=8, duration=15.0, injector_fraction=1.0)
_HP_SEED = 0x5EED


def _phold_run(seed, **overrides):
    ecfg = EngineConfig(
        end_time=_PHOLD_END, n_pes=4, n_kps=16, batch_size=16, seed=seed,
        **overrides,
    )
    tracer = Tracer()
    result = run_optimistic(PholdModel(_PHOLD), ecfg, tracer=tracer)
    return tracer.committed_sequence(), dict(result.model_stats)


_PHOLD_BASELINE = {}


def _phold_baseline(seed):
    if seed not in _PHOLD_BASELINE:
        _PHOLD_BASELINE[seed] = _phold_run(seed)
    return _PHOLD_BASELINE[seed]


@pytest.mark.parametrize("seed", GOLDEN_SEEDS)
@pytest.mark.parametrize(
    "overrides",
    [
        {"queue": "ladder"},
        {"cancellation": "lazy"},
        {"queue": "ladder", "cancellation": "lazy"},
        {"queue": "ladder", "cancellation": "lazy", "gvt": "incremental"},
        {"cancellation": "lazy", "gvt": "mattern", "transport": "mailbox"},
    ],
    ids=["ladder", "lazy", "ladder-lazy", "ladder-lazy-incgvt", "lazy-mattern"],
)
def test_phold_committed_sequence_matches_baseline(seed, overrides):
    base_seq, base_stats = _phold_baseline(seed)
    assert base_seq, "baseline committed nothing — scenario is vacuous"
    seq, stats = _phold_run(seed, **overrides)
    assert seq == base_seq
    assert stats == base_stats


def _hotpotato_run(plan=None, engine_plan=None, **overrides):
    ecfg = EngineConfig(
        end_time=_HP_CFG.duration, n_pes=4, n_kps=16, batch_size=16,
        seed=_HP_SEED, **overrides,
    )
    tracer = Tracer()
    model = HotPotatoModel(_HP_CFG, fault_plan=plan)
    faults = EngineFaults(engine_plan) if engine_plan is not None else None
    result = run_optimistic(model, ecfg, tracer=tracer, faults=faults)
    return tracer.committed_sequence(), dict(result.model_stats), result


def test_fault_plan_identity_lazy_ladder():
    """Model faults + transport chaos: the lazy/ladder engine commits the
    exact sequence the heap/aggressive engine does."""
    from repro.faults import generate_plan
    from repro.net import TorusTopology

    model_plan = generate_plan(
        TorusTopology(_HP_CFG.n),
        duration=_HP_CFG.duration,
        link_fail_rate=0.1,
        heal_after=8,
        seed=0xD00D,
    )
    transport_plan = FaultPlan(
        drop_rate=0.05, dup_rate=0.05, delay_rate=0.08, delay_rounds=2, seed=99
    )
    base_seq, base_stats, _ = _hotpotato_run(plan=model_plan, engine_plan=transport_plan)
    seq, stats, result = _hotpotato_run(
        plan=model_plan, engine_plan=transport_plan,
        queue="ladder", cancellation="lazy",
    )
    assert seq == base_seq
    assert stats == base_stats
    # The scenario actually exercised both fault classes.
    assert stats["fault_events"] > 0
    run = result.run
    assert run.transport_dropped + run.transport_duplicated + run.transport_delayed > 0


def test_checkpoint_resume_identity_lazy_ladder(tmp_path):
    """Interrupt a lazy/ladder/incremental-GVT run at a mid-run snapshot
    and resume: the completed run matches the heap/aggressive oracle that
    never checkpointed — under a non-empty FaultPlan."""
    plan_kwargs = dict(
        drop_rate=0.05, dup_rate=0.05, delay_rate=0.08, delay_rounds=2, seed=99
    )
    duration = 12.0
    cfg = HotPotatoConfig(n=4, duration=duration, injector_fraction=1.0)

    def make(**overrides):
        ecfg = EngineConfig(
            end_time=duration, n_pes=4, n_kps=16, batch_size=16, seed=7,
            **overrides,
        )
        kernel = TimeWarpKernel(HotPotatoModel(cfg), ecfg)
        kernel.attach_faults(EngineFaults(FaultPlan(**plan_kwargs)))
        return kernel

    oracle = make().run()  # heap / aggressive / synchronous, no checkpointer

    fast = dict(queue="ladder", cancellation="lazy", gvt="incremental")
    snap_dir = tmp_path / "snaps"
    marker = {"case": "prop-resume"}
    ckpt = Checkpointer(snap_dir, every=2, marker=marker)
    recorded = make(**fast).attach_checkpointer(ckpt).run()
    assert recorded.model_stats == oracle.model_stats

    snaps = list_snapshots(snap_dir)
    assert len(snaps) > 2, "cadence produced no mid-run snapshots"
    for snap in (snaps[0], snaps[len(snaps) // 2]):
        d = tmp_path / f"resume_{snap.stem}"
        d.mkdir()
        shutil.copy(snap, d / snap.name)
        ck = Checkpointer(d, every=1 << 30, marker=marker)
        ck.load_latest()
        resumed = make(**fast).attach_checkpointer(ck).run()
        assert resumed.model_stats == oracle.model_stats, (
            f"resume from {snap.name} diverged from the heap/aggressive oracle"
        )
