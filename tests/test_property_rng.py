"""Property-based tests (hypothesis) for the reversible RNG.

These are the invariants the whole Time Warp correctness story leans on:
reversing k draws restores the stream exactly, and jumping is equivalent
to stepping.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng.lcg import MASK64, lcg_jump, lcg_next, lcg_prev
from repro.rng.streams import ReversibleStream, derive_seed

seeds = st.integers(min_value=0, max_value=MASK64)
small_counts = st.integers(min_value=0, max_value=200)


@given(state=seeds)
def test_prev_inverts_next(state):
    assert lcg_prev(lcg_next(state)) == state


@given(state=seeds, k=st.integers(min_value=-300, max_value=300))
def test_jump_matches_stepping(state, k):
    expected = state
    step = lcg_next if k >= 0 else lcg_prev
    for _ in range(abs(k)):
        expected = step(expected)
    assert lcg_jump(state, k) == expected


@given(seed=seeds, n=small_counts, k=small_counts)
def test_reverse_k_of_n_draws_replays_identically(seed, n, k):
    k = min(k, n)
    s = ReversibleStream(seed)
    draws = [s.unif() for _ in range(n)]
    s.reverse(k)
    assert s.count == n - k
    assert [s.unif() for _ in range(k)] == draws[n - k :]


@given(seed=seeds, n=small_counts)
def test_checkpoint_restore_roundtrip(seed, n):
    s = ReversibleStream(seed)
    for _ in range(n):
        s.unif()
    ckpt = s.checkpoint()
    tail = [s.unif() for _ in range(10)]
    s.restore(ckpt)
    assert s.count == n
    assert [s.unif() for _ in range(10)] == tail


@given(seed=seeds, a=small_counts, b=small_counts)
def test_seek_is_position_independent(seed, a, b):
    s1 = ReversibleStream(seed)
    s1.seek(a)
    s1.seek(b)
    s2 = ReversibleStream(seed)
    s2.seek(b)
    assert s1.checkpoint() == s2.checkpoint()


@given(
    seed=st.integers(min_value=0, max_value=2**64 - 1),
    lo=st.integers(min_value=-1000, max_value=1000),
    span=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=200)
def test_integer_always_within_bounds(seed, lo, span):
    s = ReversibleStream(seed)
    hi = lo + span
    for _ in range(20):
        assert lo <= s.integer(lo, hi) <= hi
