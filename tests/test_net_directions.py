"""Unit tests for grid directions."""

from repro.net.directions import DIRECTIONS, NO_DIRECTION, Direction


def test_four_directions_in_index_order():
    assert [int(d) for d in DIRECTIONS] == [0, 1, 2, 3]


def test_opposites_are_involutions():
    for d in DIRECTIONS:
        assert d.opposite.opposite is d
        assert d.opposite != d


def test_opposite_pairs():
    assert Direction.NORTH.opposite is Direction.SOUTH
    assert Direction.EAST.opposite is Direction.WEST


def test_deltas_sum_to_zero_with_opposite():
    for d in DIRECTIONS:
        dr, dc = d.delta
        odr, odc = d.opposite.delta
        assert (dr + odr, dc + odc) == (0, 0)


def test_deltas_are_unit_steps():
    for d in DIRECTIONS:
        dr, dc = d.delta
        assert abs(dr) + abs(dc) == 1


def test_horizontal_flag():
    assert Direction.EAST.is_horizontal
    assert Direction.WEST.is_horizontal
    assert not Direction.NORTH.is_horizontal
    assert not Direction.SOUTH.is_horizontal


def test_rows_grow_southward_cols_grow_eastward():
    assert Direction.SOUTH.delta == (1, 0)
    assert Direction.EAST.delta == (0, 1)


def test_no_direction_sentinel():
    assert NO_DIRECTION == -1
    assert NO_DIRECTION not in [int(d) for d in DIRECTIONS]
