"""Tests for the event tracer, including the event-level determinism check."""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import SequentialEngine
from repro.core.optimistic import TimeWarpKernel
from repro.core.trace import COMMIT, EXEC, UNDO, TraceRecord, Tracer
from repro.models.phold import PholdConfig, PholdModel
from tests.kernel_models import ChattyModel

END = 15.0
PHOLD = PholdConfig(n_lps=16, jobs_per_lp=2, remote_fraction=0.7)


def run_seq_traced(model):
    tracer = Tracer()
    engine = SequentialEngine(model, END).attach_tracer(tracer)
    result = engine.run()
    return tracer, result


def run_opt_traced(model, **kw):
    kw.setdefault("mapping", "striped")
    tracer = Tracer()
    kernel = TimeWarpKernel(model, EngineConfig(end_time=END, **kw))
    kernel.attach_tracer(tracer)
    result = kernel.run()
    return tracer, result


def test_sequential_trace_counts():
    tracer, result = run_seq_traced(PholdModel(PHOLD))
    assert tracer.counts[EXEC] == result.run.committed
    assert tracer.counts[COMMIT] == result.run.committed
    assert tracer.counts[UNDO] == 0


def test_optimistic_trace_counts_match_stats():
    tracer, result = run_opt_traced(PholdModel(PHOLD), n_pes=4, n_kps=8, batch_size=64)
    run = result.run
    assert tracer.counts[EXEC] == run.processed
    assert tracer.counts[UNDO] == run.events_rolled_back
    assert tracer.counts[COMMIT] == run.committed
    assert run.events_rolled_back > 0  # the check above is non-trivial


def test_committed_sequences_identical_across_engines():
    # Event-level repeatability: not just equal final statistics, the
    # exact same committed events in the exact same order.
    seq_tracer, _ = run_seq_traced(PholdModel(PHOLD))
    opt_tracer, _ = run_opt_traced(PholdModel(PHOLD), n_pes=4, n_kps=8, batch_size=64)
    assert opt_tracer.committed_sequence() == seq_tracer.committed_sequence()


def test_thrash_by_lp_targets_the_poked_lp():
    tracer, _ = run_opt_traced(
        ChattyModel(n_lps=2, pokers={1: 0}), n_pes=2, n_kps=2, batch_size=1000
    )
    thrash = tracer.thrash_by_lp()
    assert thrash  # rollbacks happened
    assert max(thrash, key=thrash.get) == 0  # LP 0 is the straggler target


def test_limit_keeps_most_recent():
    tracer = Tracer(limit=5)
    seq_engine_tracer, _ = run_seq_traced(PholdModel(PHOLD))
    # Re-run with the limited tracer.
    engine = SequentialEngine(PholdModel(PHOLD), END).attach_tracer(tracer)
    engine.run()
    assert len(tracer) == 5
    assert tracer.counts[EXEC] > 5  # counts keep the full totals


def test_limit_validation():
    with pytest.raises(ValueError):
        Tracer(limit=0)


def test_trimmed_commits_refuse_sequence_check():
    # A bounded tracer that dropped COMMIT records cannot vouch for the
    # full committed sequence; it must refuse rather than silently compare
    # a partial window.
    tracer = Tracer(limit=5)
    engine = SequentialEngine(PholdModel(PHOLD), END).attach_tracer(tracer)
    engine.run()
    assert tracer.trimmed_commits > 0
    with pytest.raises(ValueError, match="trimmed"):
        tracer.committed_sequence()


def test_unbounded_tracer_never_trims():
    tracer, _ = run_seq_traced(PholdModel(PHOLD))
    assert tracer.trimmed == tracer.trimmed_commits == 0
    tracer.committed_sequence()  # no exception


def test_record_formatting():
    tracer, _ = run_seq_traced(PholdModel(PHOLD))
    text = tracer.format(last=3)
    assert text.count("\n") == 2
    assert "EXEC" in text or "COMMIT" in text


def test_select_filters_actions():
    tracer, _ = run_opt_traced(PholdModel(PHOLD), n_pes=2, n_kps=4, batch_size=64)
    assert all(r.action == UNDO for r in tracer.select(UNDO))
    assert len(tracer.select(EXEC)) == tracer.counts[EXEC]


def test_peak_memory_stats_tracked():
    _, result = run_opt_traced(PholdModel(PHOLD), n_pes=2, n_kps=4, batch_size=64)
    assert result.run.peak_pending > 0
    assert result.run.peak_processed > 0
    # Fossil collection bounds the processed list well below total work.
    assert result.run.peak_processed < result.run.processed
