"""Property-based tests for torus geometry (DESIGN.md invariant 6)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.net.directions import DIRECTIONS
from repro.net.torus import TorusTopology

dims = st.integers(min_value=2, max_value=16)


@st.composite
def torus_and_two_nodes(draw):
    rows = draw(dims)
    cols = draw(dims)
    t = TorusTopology(rows, cols)
    a = draw(st.integers(min_value=0, max_value=t.num_nodes - 1))
    b = draw(st.integers(min_value=0, max_value=t.num_nodes - 1))
    return t, a, b


@given(torus_and_two_nodes())
def test_distance_symmetry(tab):
    t, a, b = tab
    assert t.distance(a, b) == t.distance(b, a)


@given(torus_and_two_nodes())
def test_distance_identity(tab):
    t, a, b = tab
    assert (t.distance(a, b) == 0) == (a == b)


@st.composite
def torus_and_three_nodes(draw):
    rows = draw(dims)
    cols = draw(dims)
    t = TorusTopology(rows, cols)
    nodes = [
        draw(st.integers(min_value=0, max_value=t.num_nodes - 1)) for _ in range(3)
    ]
    return (t, *nodes)


@given(torus_and_three_nodes())
def test_triangle_inequality(tabc):
    t, a, b, c = tabc
    assert t.distance(a, c) <= t.distance(a, b) + t.distance(b, c)


@given(torus_and_two_nodes())
def test_neighbors_are_at_distance_one(tab):
    t, a, _ = tab
    for d in DIRECTIONS:
        assert t.distance(a, t.neighbor(a, d)) in (0, 1)  # 0 on 2-rings


@given(torus_and_two_nodes())
def test_good_dirs_strictly_decrease_distance(tab):
    t, a, b = tab
    base = t.distance(a, b)
    for d in t.good_dirs(a, b):
        assert t.distance(t.neighbor(a, d), b) == base - 1


@given(torus_and_two_nodes())
def test_some_good_dir_exists_unless_at_destination(tab):
    t, a, b = tab
    if a != b:
        assert t.good_dirs(a, b)


@given(torus_and_two_nodes())
def test_homerun_follows_good_links(tab):
    t, a, b = tab
    if a == b:
        return
    d = t.homerun_dir(a, b)
    # The home-run hop always makes progress (it is a greed path).
    assert t.distance(t.neighbor(a, d), b) == t.distance(a, b) - 1


@given(torus_and_two_nodes())
def test_homerun_terminates_within_diameter(tab):
    t, a, b = tab
    node, hops = a, 0
    while node != b:
        node = t.neighbor(node, t.homerun_dir(node, b))
        hops += 1
        assert hops <= t.diameter() + 1
    assert hops == t.distance(a, b)
