"""Unit tests for LP→KP→PE mapping strategies."""

import pytest

from repro.core.mapping import Mapping, balanced_tile_counts, build_mapping
from repro.errors import ConfigurationError


def test_balanced_tile_counts():
    assert balanced_tile_counts(64) == (8, 8)
    assert balanced_tile_counts(8) == (2, 4)
    assert balanced_tile_counts(1) == (1, 1)
    assert balanced_tile_counts(7) == (1, 7)


def test_block_mapping_tiles_grid():
    m = build_mapping(64, 4, 4, "block", grid=(8, 8))
    # 4 KPs over an 8x8 grid = 4x4 tiles; LP (0,0) and (3,3) share a KP.
    assert m.lp_to_kp[0] == m.lp_to_kp[3 * 8 + 3]
    assert m.lp_to_kp[0] != m.lp_to_kp[4 * 8 + 4]
    assert m.n_pes == 4


def test_block_mapping_kp_contiguity():
    # Adjacent LPs usually share a KP: the whole point of the mapping.
    m = build_mapping(64, 4, 1, "block", grid=(8, 8))
    same = sum(
        1
        for r in range(8)
        for c in range(7)
        if m.lp_to_kp[r * 8 + c] == m.lp_to_kp[r * 8 + c + 1]
    )
    assert same > 40  # 48 of 56 east-pairs are internal for 4x4 tiles


def test_block_requires_divisible_grid():
    with pytest.raises(ConfigurationError):
        build_mapping(49, 4, 2, "block", grid=(7, 7))


def test_block_without_grid_falls_back_to_striped():
    m = build_mapping(100, 4, 2, "block", grid=None)
    assert m.lp_to_kp == build_mapping(100, 4, 2, "striped").lp_to_kp


def test_striped_mapping_contiguous_ranges():
    m = build_mapping(100, 4, 2, "striped")
    assert m.lp_to_kp[0] == 0
    assert m.lp_to_kp[99] == 3
    # Monotone non-decreasing.
    assert list(m.lp_to_kp) == sorted(m.lp_to_kp)


def test_random_mapping_deterministic_and_scattered():
    m1 = build_mapping(256, 8, 4, "random", seed=7)
    m2 = build_mapping(256, 8, 4, "random", seed=7)
    assert m1.lp_to_kp == m2.lp_to_kp
    m3 = build_mapping(256, 8, 4, "random", seed=8)
    assert m1.lp_to_kp != m3.lp_to_kp
    assert len(set(m1.lp_to_kp)) == 8


def test_every_pe_gets_kps():
    for strategy in ("striped", "random"):
        m = build_mapping(64, 8, 4, strategy)
        assert set(m.kp_to_pe) == {0, 1, 2, 3}


def test_lp_to_pe_composition():
    m = build_mapping(64, 8, 4, "striped")
    for lp in range(64):
        assert m.lp_to_pe(lp) == m.kp_to_pe[m.lp_to_kp[lp]]


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(n_lps=0, n_kps=1, n_pes=1),
        dict(n_lps=10, n_kps=0, n_pes=1),
        dict(n_lps=10, n_kps=2, n_pes=4),  # fewer KPs than PEs
        dict(n_lps=10, n_kps=3, n_pes=2),  # not a multiple
        dict(n_lps=10, n_kps=16, n_pes=2),  # more KPs than LPs
    ],
)
def test_invalid_population_sizes(kwargs):
    with pytest.raises(ConfigurationError):
        build_mapping(strategy="striped", **kwargs)


def test_unknown_strategy():
    with pytest.raises(ConfigurationError):
        build_mapping(10, 2, 1, "fancy")


def test_grid_size_mismatch():
    with pytest.raises(ConfigurationError):
        build_mapping(10, 2, 1, "block", grid=(3, 3))


def test_validate_rejects_sparse_pes():
    m = Mapping(lp_to_kp=(0, 1), kp_to_pe=(0, 2))
    with pytest.raises(ConfigurationError):
        m.validate()
