"""Tests for the analysis helpers (linear fits, speed-up arithmetic)."""

import pytest

from repro.analysis.linfit import fit_linear
from repro.analysis.speedup import SpeedupPoint, efficiency, speedup


def test_perfect_line():
    fit = fit_linear([1, 2, 3, 4], [3, 5, 7, 9])
    assert fit.slope == pytest.approx(2.0)
    assert fit.intercept == pytest.approx(1.0)
    assert fit.r_squared == pytest.approx(1.0)


def test_predict():
    fit = fit_linear([0, 1], [1, 3])
    assert fit.predict(10) == pytest.approx(21.0)


def test_noisy_line_r2_below_one():
    fit = fit_linear([1, 2, 3, 4, 5], [2, 4.5, 5.5, 8.2, 9.9])
    assert 0.9 < fit.r_squared < 1.0


def test_quadratic_data_has_worse_linear_fit_than_linear_data():
    xs = list(range(1, 20))
    quad = fit_linear(xs, [x * x for x in xs])
    lin = fit_linear(xs, [3 * x + 1 for x in xs])
    assert lin.r_squared > quad.r_squared


def test_constant_ys_fit_exactly():
    fit = fit_linear([1, 2, 3], [5, 5, 5])
    assert fit.slope == pytest.approx(0.0)
    assert fit.r_squared == 1.0


@pytest.mark.parametrize(
    "xs,ys",
    [([1], [1]), ([1, 1, 1], [1, 2, 3]), ([1, 2], [1, 2, 3])],
)
def test_fit_rejects_degenerate_inputs(xs, ys):
    with pytest.raises(ValueError):
        fit_linear(xs, ys)


def test_speedup_and_efficiency():
    assert speedup(100.0, 350.0) == pytest.approx(3.5)
    assert efficiency(100.0, 350.0, 4) == pytest.approx(0.875)


def test_speedup_rejects_bad_inputs():
    with pytest.raises(ValueError):
        speedup(0.0, 10.0)
    with pytest.raises(ValueError):
        efficiency(10.0, 10.0, 0)


def test_speedup_point():
    p = SpeedupPoint(n=32, n_pes=4, event_rate=800.0, sequential_rate=400.0)
    assert p.speedup == pytest.approx(2.0)
    assert p.efficiency == pytest.approx(0.5)
