"""Unit tests for the virtual wall-clock cost model."""

from repro.core.costmodel import CostModel


def test_cache_factor_flat_below_knee():
    cm = CostModel(cache_lps=256)
    assert cm.cache_factor(1) == 1.0
    assert cm.cache_factor(256) == 1.0


def test_cache_factor_grows_log2_above_knee():
    cm = CostModel(cache_lps=256, cache_penalty=0.5)
    assert cm.cache_factor(512) == 1.5
    assert cm.cache_factor(1024) == 2.0


def test_event_cost_scales_with_cache_factor():
    cm = CostModel(event=2.0, cache_lps=256, cache_penalty=0.5)
    assert cm.event_cost(100) == 2.0
    assert cm.event_cost(512) == 3.0


def test_bus_factor_needs_multiple_pes_and_pressure():
    cm = CostModel(cache_lps=256, bus_penalty=0.1)
    assert cm.bus_factor(1, 10_000) == 1.0
    assert cm.bus_factor(4, 100) == 1.0
    assert cm.bus_factor(2, 512) == 1.1
    assert cm.bus_factor(4, 512) > cm.bus_factor(2, 512)


def test_gvt_overhead_components():
    cm = CostModel(gvt_per_pe=10.0, kp_per_round=1.0, fossil_per_lp=0.5)
    assert cm.gvt_overhead(lps_per_pe=4, kps_per_pe=2) == 10.0 + 2.0 + 2.0


def test_gvt_overhead_grows_with_kps():
    cm = CostModel()
    assert cm.gvt_overhead(100, 64) > cm.gvt_overhead(100, 4)


def test_seconds_conversion():
    cm = CostModel(unit_seconds=1e-6)
    assert cm.seconds(2_000_000) == 2.0


def test_frozen():
    cm = CostModel()
    try:
        cm.event = 5.0
        raised = False
    except AttributeError:
        raised = True
    assert raised
