"""Snapshot container: roundtrip, integrity rejection, listing order."""

import pytest

from repro.ckpt.snapshot import (
    MAGIC,
    SNAPSHOT_SUFFIX,
    latest_snapshot,
    list_snapshots,
    read_snapshot,
    write_snapshot,
)
from repro.errors import SnapshotError

PAYLOAD = {
    "kind": "sequential",
    "loop": {"processed": 42},
    "nested": {"shared": [1, 2, 3]},
}


def test_roundtrip(tmp_path):
    p = tmp_path / f"one{SNAPSHOT_SUFFIX}"
    write_snapshot(p, PAYLOAD)
    assert read_snapshot(p) == PAYLOAD


def test_roundtrip_preserves_object_sharing(tmp_path):
    shared = {"x": 1}
    p = write_snapshot(tmp_path / f"s{SNAPSHOT_SUFFIX}",
                       {"kind": "sequential", "a": shared, "b": shared})
    loaded = read_snapshot(p)
    assert loaded["a"] is loaded["b"]


def test_flipped_payload_byte_rejected(tmp_path):
    p = write_snapshot(tmp_path / f"c{SNAPSHOT_SUFFIX}", PAYLOAD)
    raw = bytearray(p.read_bytes())
    raw[-1] ^= 0xFF
    p.write_bytes(bytes(raw))
    with pytest.raises(SnapshotError, match="integrity hash mismatch"):
        read_snapshot(p)


def test_truncation_rejected(tmp_path):
    p = write_snapshot(tmp_path / f"t{SNAPSHOT_SUFFIX}", PAYLOAD)
    raw = p.read_bytes()
    p.write_bytes(raw[: len(raw) - 7])
    with pytest.raises(SnapshotError, match="integrity hash mismatch"):
        read_snapshot(p)
    p.write_bytes(raw[:10])  # not even a full header
    with pytest.raises(SnapshotError, match="truncated"):
        read_snapshot(p)


def test_bad_magic_rejected(tmp_path):
    p = write_snapshot(tmp_path / f"m{SNAPSHOT_SUFFIX}", PAYLOAD)
    raw = bytearray(p.read_bytes())
    raw[0] ^= 0xFF
    p.write_bytes(bytes(raw))
    with pytest.raises(SnapshotError, match="bad magic"):
        read_snapshot(p)


def test_future_version_rejected(tmp_path):
    p = write_snapshot(tmp_path / f"v{SNAPSHOT_SUFFIX}", PAYLOAD)
    raw = bytearray(p.read_bytes())
    assert raw[: len(MAGIC)] == MAGIC
    raw[len(MAGIC)] = 99  # little-endian u32 version right after the magic
    p.write_bytes(bytes(raw))
    with pytest.raises(SnapshotError, match="unsupported snapshot version 99"):
        read_snapshot(p)


def test_payload_without_kind_rejected(tmp_path):
    p = write_snapshot(tmp_path / f"k{SNAPSHOT_SUFFIX}", {"no": "kind"})
    with pytest.raises(SnapshotError, match="no engine kind"):
        read_snapshot(p)


def test_listing_order_and_latest(tmp_path):
    assert list_snapshots(tmp_path) == []
    assert latest_snapshot(tmp_path) is None
    for i in (2, 0, 10, 1):
        write_snapshot(
            tmp_path / f"ckpt_{i:06d}{SNAPSHOT_SUFFIX}", dict(PAYLOAD, i=i)
        )
    names = [p.name for p in list_snapshots(tmp_path)]
    assert names == [
        "ckpt_000000.rpsnap", "ckpt_000001.rpsnap",
        "ckpt_000002.rpsnap", "ckpt_000010.rpsnap",
    ]
    assert latest_snapshot(tmp_path).name == "ckpt_000010.rpsnap"
    assert list_snapshots(tmp_path / "missing") == []
