"""Unit tests for the sequential oracle engine."""

import pytest

from repro.core.engine import SequentialEngine, run_sequential
from repro.core.event import Event
from repro.core.lp import LogicalProcess, Model
from repro.errors import ConfigurationError
from tests.kernel_models import ChattyModel


class RecorderLP(LogicalProcess):
    """Schedules a fixed set of self-events and records execution order."""

    def __init__(self, lp_id, times):
        super().__init__(lp_id)
        self.times = times
        self.seen = []
        self.committed = []

    def on_init(self):
        for t in self.times:
            self.send(t, self.id, "E")

    def forward(self, event):
        self.seen.append(event.ts)

    def reverse(self, event):  # pragma: no cover - never rolled back
        self.seen.pop()

    def commit(self, event):
        self.committed.append(event.ts)


class RecorderModel(Model):
    def __init__(self, times, n_lps=1):
        self.times = times
        self.n_lps = n_lps

    def build(self):
        return [RecorderLP(i, self.times) for i in range(self.n_lps)]

    def collect_stats(self, lps):
        return {"seen": tuple(tuple(lp.seen) for lp in lps)}


def test_events_execute_in_timestamp_order():
    result = run_sequential(RecorderModel([3.0, 1.0, 2.0]), 10.0)
    assert result.model_stats["seen"] == ((1.0, 2.0, 3.0),)


def test_end_barrier_is_exclusive():
    result = run_sequential(RecorderModel([1.0, 5.0, 5.00001]), 5.0)
    assert result.model_stats["seen"] == ((1.0,),)
    assert result.run.committed == 1


def test_commit_hook_fires_per_event():
    engine = SequentialEngine(RecorderModel([1.0, 2.0]), 10.0)
    result = engine.run()
    assert result.lps[0].committed == [1.0, 2.0]


def test_stats_consistency():
    result = run_sequential(ChattyModel(n_lps=3), 20.0)
    run = result.run
    assert run.engine == "sequential"
    assert run.committed == run.processed
    assert run.events_rolled_back == 0
    assert run.event_rate > 0
    assert run.makespan_seconds > 0
    # 3 LPs x 19 ticks each (ticks at 1..19 < 20).
    assert result.model_stats["ticks"] == (19, 19, 19)


def test_same_seed_same_results():
    a = run_sequential(ChattyModel(3, pokers={0: 1}), 15.0, seed=5)
    b = run_sequential(ChattyModel(3, pokers={0: 1}), 15.0, seed=5)
    assert a.model_stats == b.model_stats


def test_empty_model_rejected():
    class Empty(Model):
        def build(self):
            return []

        def collect_stats(self, lps):
            return {}

    with pytest.raises(ConfigurationError):
        SequentialEngine(Empty(), 1.0)


def test_nondense_lp_ids_rejected():
    class Bad(Model):
        def build(self):
            return [RecorderLP(5, [])]

        def collect_stats(self, lps):
            return {}

    with pytest.raises(ConfigurationError):
        SequentialEngine(Bad(), 1.0)


def test_bad_end_time_rejected():
    with pytest.raises(ConfigurationError):
        SequentialEngine(RecorderModel([]), 0.0)
