"""Tests for the ``python -m repro.hotpotato`` command-line interface."""

import pytest

from repro.hotpotato.__main__ import build_parser, main


def test_defaults():
    args = build_parser().parse_args([])
    assert args.n == 8
    assert args.processors == 1
    assert args.probability_i == 100.0


def test_sequential_run(capsys):
    rc = main(["--n", "4", "--duration", "20", "--probability-i", "50"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "4x4 torus" in out
    assert "engine=sequential" in out
    assert "packets delivered" in out


def test_parallel_run(capsys):
    rc = main(
        ["--n", "4", "--duration", "20", "--processors", "2", "--kps", "4"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "engine=optimistic (2 PE)" in out
    assert "events rolled back" in out


def test_validate_cross_engine(capsys):
    rc = main(["--n", "4", "--duration", "20", "--kps", "8", "--validate"])
    assert rc == 0
    assert "IDENTICAL" in capsys.readouterr().out


def test_mesh_and_proof_mode(capsys):
    rc = main(
        ["--n", "4", "--duration", "20", "--mesh", "--no-absorb-sleeping"]
    )
    assert rc == 0
    assert "4x4 mesh" in capsys.readouterr().out


def test_bad_probability(capsys):
    assert main(["--probability-i", "150"]) == 2
