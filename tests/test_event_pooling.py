"""Determinism guard: event pooling must be observationally invisible.

The free-list pool recycles committed events back through fossil
collection, so a pooled run constructs almost no Event objects in steady
state — but the committed results must be bit-identical to a run with
pooling disabled, on every engine.  These tests are the PR-level guard
for that property; the cross-engine determinism suite then extends it to
sequential-vs-optimistic equality with pooling on by default.
"""

from repro.core.config import EngineConfig
from repro.core.conservative import ConservativeConfig, run_conservative
from repro.core.engine import run_sequential
from repro.core.optimistic import run_optimistic
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.model import HotPotatoModel

SEED = 20010704


def _cfg():
    return HotPotatoConfig(n=4, duration=25.0, injector_fraction=1.0)


def test_sequential_pooling_invisible():
    on = run_sequential(HotPotatoModel(_cfg()), 25.0, seed=SEED, pool=True)
    off = run_sequential(HotPotatoModel(_cfg()), 25.0, seed=SEED, pool=False)
    assert on.model_stats == off.model_stats
    assert on.run.processed == off.run.processed
    assert on.run.committed == off.run.committed


def test_optimistic_pooling_invisible():
    results = []
    for pool in (True, False):
        cfg = _cfg()
        ecfg = EngineConfig(
            end_time=cfg.duration,
            n_pes=4,
            n_kps=8,
            batch_size=16,
            seed=SEED,
            pool=pool,
        )
        results.append(run_optimistic(HotPotatoModel(cfg), ecfg))
    on, off = results
    assert on.model_stats == off.model_stats
    assert on.run.processed == off.run.processed
    assert on.run.committed == off.run.committed
    assert on.run.stragglers == off.run.stragglers
    assert on.run.events_rolled_back == off.run.events_rolled_back


def test_conservative_pooling_invisible():
    results = []
    for pool in (True, False):
        cfg = _cfg()
        ccfg = ConservativeConfig(
            end_time=cfg.duration, n_pes=4, sync="yawns", seed=SEED, pool=pool
        )
        results.append(run_conservative(HotPotatoModel(cfg), ccfg))
    on, off = results
    assert on.model_stats == off.model_stats
    assert on.run.processed == off.run.processed


def test_pool_counters_reported_and_meaningful():
    cfg = _cfg()
    ecfg = EngineConfig(
        end_time=cfg.duration, n_pes=4, n_kps=8, batch_size=16, seed=SEED
    )
    on = run_optimistic(HotPotatoModel(cfg), ecfg)
    # Pooling is on by default; fossil collection refills the free list,
    # so a steady-state run mostly recycles.
    assert on.run.pool_hits > 0
    assert on.run.pool_allocs > 0
    assert 0.5 < on.run.pool_hit_rate < 1.0
    off = run_optimistic(
        HotPotatoModel(cfg),
        EngineConfig(
            end_time=cfg.duration,
            n_pes=4,
            n_kps=8,
            batch_size=16,
            seed=SEED,
            pool=False,
        ),
    )
    assert off.run.pool_hits == 0 and off.run.pool_allocs == 0
    assert off.run.pool_hit_rate == 0.0


def test_optimistic_matches_sequential_with_pooling_default():
    # The repo's determinism oracle, with the pooled fast path active.
    cfg = _cfg()
    seq = run_sequential(HotPotatoModel(cfg), cfg.duration, seed=SEED)
    ecfg = EngineConfig(
        end_time=cfg.duration, n_pes=4, n_kps=8, batch_size=16, seed=SEED
    )
    opt = run_optimistic(HotPotatoModel(cfg), ecfg)
    assert opt.model_stats == seq.model_stats
