"""Tests for the HotPotatoSimulation facade and engine equivalence."""

import pytest

from repro.core.config import EngineConfig
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.simulation import HotPotatoSimulation

CFG = HotPotatoConfig(n=6, duration=30.0, injector_fraction=1.0)


@pytest.fixture(scope="module")
def oracle():
    return HotPotatoSimulation(CFG).run()


def test_run_produces_stats(oracle):
    assert oracle.run.engine == "sequential"
    assert oracle.model_stats["delivered"] > 0


def test_parallel_matches_oracle(oracle):
    sim = HotPotatoSimulation(CFG)
    par = sim.run_parallel(n_pes=4, n_kps=12, mapping="striped")
    assert par.model_stats == oracle.model_stats


def test_parallel_window_mode_matches_oracle(oracle):
    sim = HotPotatoSimulation(CFG)
    par = sim.run_parallel(
        n_pes=4, n_kps=12, mapping="striped", window=2.0, batch_size=1 << 20
    )
    assert par.run.events_rolled_back > 0  # real Time Warp activity
    assert par.model_stats == oracle.model_stats


def test_engine_config_end_time_is_overridden(oracle):
    sim = HotPotatoSimulation(CFG)
    ecfg = EngineConfig(end_time=999.0, n_pes=2, n_kps=4, mapping="striped")
    par = sim.run_parallel(engine_config=ecfg)
    assert par.model_stats == oracle.model_stats  # ran to CFG.duration


def test_validate_determinism_helper():
    sim = HotPotatoSimulation(HotPotatoConfig(n=4, duration=20.0))
    assert sim.validate_determinism(n_pes=2, n_kps=4)


def test_different_seeds_differ():
    a = HotPotatoSimulation(CFG, seed=1).run()
    b = HotPotatoSimulation(CFG, seed=2).run()
    assert a.model_stats != b.model_stats


def test_mesh_parallel_matches_sequential():
    cfg = HotPotatoConfig(n=6, duration=30.0, injector_fraction=0.5, torus=False)
    sim = HotPotatoSimulation(cfg)
    assert sim.run().model_stats == sim.run_parallel(
        n_pes=2, n_kps=6, mapping="striped"
    ).model_stats


def test_proof_mode_parallel_matches_sequential():
    cfg = HotPotatoConfig(
        n=6, duration=30.0, injector_fraction=0.5, absorb_sleeping=False
    )
    sim = HotPotatoSimulation(cfg)
    assert sim.run().model_stats == sim.run_parallel(
        n_pes=4, n_kps=12, mapping="striped"
    ).model_stats


def test_heartbeat_parallel_matches_sequential():
    cfg = HotPotatoConfig(n=4, duration=25.0, injector_fraction=1.0, heartbeat=True)
    sim = HotPotatoSimulation(cfg)
    seq = sim.run()
    par = sim.run_parallel(n_pes=2, n_kps=4, mapping="striped")
    assert seq.model_stats == par.model_stats
    assert seq.model_stats["link_utilization"] > 0
