"""The checkpoint invariant: kill at ANY snapshot, resume, get the
bit-identical committed run — for all three engines, with and without a
fault plan.

Each case runs the workload once clean (the oracle), once with a
checkpointer snapshotting every boundary, then restores from *every*
snapshot written and re-runs to completion.  All resumed runs must
reproduce the oracle's complete model statistics (which include
per-router event fingerprints, so any divergence in committed event
order shows up).
"""

import shutil

import pytest

from repro.ckpt import Checkpointer, list_snapshots
from repro.core.config import EngineConfig
from repro.core.conservative import ConservativeConfig, ConservativeKernel
from repro.core.engine import SequentialEngine
from repro.core.optimistic import TimeWarpKernel
from repro.faults import FaultPlan
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.model import HotPotatoModel

N = 4
DURATION = 12.0
SEED = 7
SEQ_EVENTS = 64


def _cfg() -> HotPotatoConfig:
    return HotPotatoConfig(n=N, duration=DURATION, injector_fraction=1.0)


def _fault_plan() -> FaultPlan:
    return FaultPlan(
        drop_rate=0.05, dup_rate=0.05, delay_rate=0.08, delay_rounds=2, seed=99
    )


def _check_resume_from_every_snapshot(tmp_path, make_engine, marker):
    """Record with every-boundary snapshots, then resume from each one."""
    oracle = make_engine().run()

    snap_dir = tmp_path / "snaps"
    ckpt = Checkpointer(snap_dir, every=1, marker=marker, seq_events=SEQ_EVENTS)
    recorded = make_engine().attach_checkpointer(ckpt).run()
    assert recorded.model_stats == oracle.model_stats, (
        "attaching a checkpointer changed the committed run"
    )
    snaps = list_snapshots(snap_dir)
    assert snaps, "no snapshots were written"

    for snap in snaps:
        d = tmp_path / f"resume_{snap.stem}"
        d.mkdir()
        shutil.copy(snap, d / snap.name)
        ck = Checkpointer(
            d, every=1 << 30, marker=marker, seq_events=SEQ_EVENTS
        )
        ck.load_latest()
        resumed = make_engine().attach_checkpointer(ck).run()
        assert resumed.model_stats == oracle.model_stats, (
            f"resume from {snap.name} diverged from the oracle"
        )
    return len(snaps)


def test_sequential_resume_every_snapshot(tmp_path):
    n = _check_resume_from_every_snapshot(
        tmp_path,
        lambda: SequentialEngine(HotPotatoModel(_cfg()), DURATION, seed=SEED),
        {"case": "seq"},
    )
    assert n > 3  # the interval cadence actually produced mid-run snapshots


@pytest.mark.parametrize("sync", ["yawns", "null"])
def test_conservative_resume_every_snapshot(tmp_path, sync):
    ccfg = ConservativeConfig(end_time=DURATION, n_pes=4, sync=sync, seed=SEED)
    n = _check_resume_from_every_snapshot(
        tmp_path,
        lambda: ConservativeKernel(HotPotatoModel(_cfg()), ccfg),
        {"case": f"cons-{sync}"},
    )
    assert n > 3


@pytest.mark.parametrize(
    "overrides",
    [
        {},  # reverse rollback, immediate transport, synchronous GVT
        {"rollback": "copy"},
        {"cancellation": "lazy"},
        {"gvt": "mattern", "transport": "mailbox"},
        {"adaptive": True, "queue": "splay"},
    ],
    ids=["reverse", "copy", "lazy", "mattern-mailbox", "adaptive-splay"],
)
def test_optimistic_resume_every_snapshot(tmp_path, overrides):
    ecfg = EngineConfig(
        end_time=DURATION, n_pes=4, n_kps=16, batch_size=16, seed=SEED,
        **overrides,
    )
    n = _check_resume_from_every_snapshot(
        tmp_path,
        lambda: TimeWarpKernel(HotPotatoModel(_cfg()), ecfg),
        {"case": "opt", **{k: str(v) for k, v in overrides.items()}},
    )
    assert n > 3


def test_optimistic_resume_with_fault_plan(tmp_path):
    """The invariant holds under a non-empty FaultPlan: model faults are
    part of the model, transport faults are captured with the engine."""
    from repro.faults.injector import EngineFaults

    ecfg = EngineConfig(
        end_time=DURATION, n_pes=4, n_kps=16, batch_size=16, seed=SEED
    )

    def make_engine():
        plan = _fault_plan()
        kernel = TimeWarpKernel(HotPotatoModel(_cfg(), fault_plan=plan), ecfg)
        kernel.attach_faults(EngineFaults(plan))
        return kernel

    n = _check_resume_from_every_snapshot(
        tmp_path, make_engine, {"case": "opt-faulted"}
    )
    assert n > 3


def test_sequential_resume_with_fault_plan(tmp_path):
    def make_engine():
        return SequentialEngine(
            HotPotatoModel(_cfg(), fault_plan=_fault_plan()), DURATION,
            seed=SEED,
        )

    _check_resume_from_every_snapshot(tmp_path, make_engine, {"case": "seq-faulted"})


def test_marker_mismatch_refused(tmp_path):
    from repro.errors import SnapshotError

    ckpt = Checkpointer(tmp_path, every=1, marker={"seed": SEED})
    SequentialEngine(HotPotatoModel(_cfg()), DURATION, seed=SEED)\
        .attach_checkpointer(ckpt).run()
    other = Checkpointer(tmp_path, every=1, marker={"seed": SEED + 1})
    with pytest.raises(SnapshotError, match="marker mismatch"):
        other.load_latest()


def test_resumed_cadence_matches_uninterrupted(tmp_path):
    """A resumed run writes the same remaining snapshots as the
    uninterrupted run would have — boundary pacing is absolute, not
    relative to the restore point."""
    full_dir = tmp_path / "full"
    ckpt = Checkpointer(full_dir, every=2, marker={}, seq_events=SEQ_EVENTS)
    SequentialEngine(HotPotatoModel(_cfg()), DURATION, seed=SEED)\
        .attach_checkpointer(ckpt).run()
    full = [p.name for p in list_snapshots(full_dir)]
    assert len(full) > 1

    # Restore from the first snapshot and let the run finish.
    resumed_dir = tmp_path / "resumed"
    resumed_dir.mkdir()
    shutil.copy(full_dir / full[0], resumed_dir / full[0])
    ck = Checkpointer(resumed_dir, every=2, marker={}, seq_events=SEQ_EVENTS)
    ck.load_latest()
    SequentialEngine(HotPotatoModel(_cfg()), DURATION, seed=SEED)\
        .attach_checkpointer(ck).run()
    assert [p.name for p in list_snapshots(resumed_dir)] == full
