"""Tests for the plan → per-node fault views compilation and the
static/dynamic link-failure split, including topology-level masking."""

import pytest

from repro.faults import (
    CRASH,
    LINK_DOWN,
    LINK_UP,
    RECOVER,
    FaultEvent,
    FaultPlan,
    FaultPlanError,
    compile_node_views,
    static_failed_links,
)
from repro.net import Direction, MeshTopology, TorusTopology

E, S, W, N = (
    int(Direction.EAST),
    int(Direction.SOUTH),
    int(Direction.WEST),
    int(Direction.NORTH),
)


def test_static_split_boot_failures_only():
    plan = FaultPlan(
        events=(
            FaultEvent(0, LINK_DOWN, 0, E),  # static: down at 0, never up
            FaultEvent(0, LINK_DOWN, 5, S),  # dynamic: heals later
            FaultEvent(10, LINK_UP, 5, S),
            FaultEvent(3, LINK_DOWN, 7, E),  # dynamic: fails mid-run
        )
    )
    assert static_failed_links(plan) == ((0, E),)


def test_compile_views_masks_both_endpoints():
    topo = TorusTopology(4)
    plan = FaultPlan(
        events=(
            FaultEvent(2, LINK_DOWN, 1, E),
            FaultEvent(8, LINK_UP, 1, E),
        )
    )
    views = compile_node_views(plan, topo)
    peer = topo.neighbor(1, Direction.EAST)
    assert set(views) == {1, peer}
    for step, down in ((1, False), (2, True), (7, True), (8, False)):
        assert views[1].usable(E, step) is not down
        assert views[peer].usable(W, step) is not down
    # The unaffected directions stay usable throughout.
    assert views[1].usable(S, 5)
    assert views[1].mask((True,) * 4, 5) == (True, False, True, True)


def test_compile_views_crash_blackholes_neighbor_links():
    topo = TorusTopology(4)
    plan = FaultPlan(
        events=(FaultEvent(3, CRASH, 5), FaultEvent(9, RECOVER, 5))
    )
    views = compile_node_views(plan, topo)
    assert views[5].crashed(3) and views[5].crashed(8)
    assert not views[5].crashed(2) and not views[5].crashed(9)
    # Every neighbor sees its link toward 5 unusable while 5 is down —
    # sending into a crashed router would silently lose the packet.
    for d in Direction:
        peer = topo.neighbor(5, d)
        toward = int(d.opposite)
        assert not views[peer].usable(toward, 5)
        assert views[peer].usable(toward, 9)


def test_compile_views_static_links_excluded():
    topo = TorusTopology(4)
    plan = FaultPlan(events=(FaultEvent(0, LINK_DOWN, 0, E),))
    static = static_failed_links(plan)
    topo = TorusTopology(4, failed_links=static)
    views = compile_node_views(plan, topo)
    # Static failures live in the topology, not the views.
    assert views == {}
    assert topo.neighbor(0, Direction.EAST) is None
    peer_mask = topo.good_dirs(0, 2)
    assert Direction.EAST not in peer_mask


def test_compile_views_rejects_missing_mesh_edge():
    # Node 3 of a 2x2 mesh has no EAST neighbor; failing that link is a
    # plan/topology mismatch the compile step must catch.
    plan = FaultPlan(events=(FaultEvent(1, LINK_DOWN, 3, E),))
    with pytest.raises(FaultPlanError):
        compile_node_views(plan, MeshTopology(2))


def test_mesh_static_failed_links_reduce_degree():
    plan = FaultPlan(events=(FaultEvent(0, LINK_DOWN, 0, E),))
    topo = MeshTopology(3, failed_links=static_failed_links(plan))
    assert topo.neighbor(0, Direction.EAST) is None
    assert topo.neighbor(1, Direction.WEST) is None
    # Corner 0 of a 3x3 mesh normally has degree 2 (E, S); now 1.
    assert topo.degree(0) == 1


def test_torus_route_info_avoids_static_failed_link():
    plan = FaultPlan(events=(FaultEvent(0, LINK_DOWN, 0, E),))
    topo = TorusTopology(4, failed_links=static_failed_links(plan))
    # 0 → 5 wants EAST and SOUTH; with 0's EAST link dead only SOUTH
    # remains good, and 0 → 1 (EAST the sole good direction) goes empty.
    good, _homerun, _turning, dist = topo.route_info(0, 5)
    assert good == (Direction.SOUTH,)
    assert topo.route_info(0, 1)[0] == ()
    # Distance stays geometric: the metric ignores failures by design.
    assert dist == TorusTopology(4).route_info(0, 5)[3]


def test_interval_queries_match_brute_force():
    plan = FaultPlan(
        events=(
            FaultEvent(2, LINK_DOWN, 1, E),
            FaultEvent(5, LINK_UP, 1, E),
            FaultEvent(9, LINK_DOWN, 1, E),
            FaultEvent(1, CRASH, 1),
            FaultEvent(4, RECOVER, 1),
        )
    )
    views = compile_node_views(plan, TorusTopology(4))
    v = views[1]
    for step in range(0, 15):
        link_down = (2 <= step < 5) or step >= 9
        crashed = 1 <= step < 4
        assert v.usable(E, step) is not link_down
        assert v.crashed(step) is crashed
