"""Unit tests for virtual-time keys."""

from repro.vt import EventKey, KEY_EPOCH, KEY_HORIZON, TIME_EPOCH, TIME_HORIZON


def test_key_orders_by_timestamp_first():
    assert EventKey(1.0, 99, 99) < EventKey(2.0, 0, 0)


def test_key_ties_break_by_origin_then_seq():
    assert EventKey(1.0, 1, 5) < EventKey(1.0, 2, 0)
    assert EventKey(1.0, 1, 5) < EventKey(1.0, 1, 6)


def test_key_equality():
    assert EventKey(1.5, 3, 7) == EventKey(1.5, 3, 7)


def test_epoch_and_horizon_bracket_all_keys():
    k = EventKey(123.456, 10, 20)
    assert KEY_EPOCH < k < KEY_HORIZON


def test_time_constants():
    assert TIME_EPOCH == 0.0
    assert TIME_HORIZON == float("inf")


def test_key_str_is_readable():
    text = str(EventKey(2.5, 3, 4))
    assert "2.5" in text and "3" in text and "4" in text
