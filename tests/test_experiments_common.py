"""Unit tests for the experiment plumbing (SweepParams, run helpers)."""

import pytest

from repro.experiments.common import (
    DEFAULT_LOADS,
    SweepParams,
    run_hotpotato_parallel,
    run_hotpotato_sequential,
)


def test_default_loads_are_the_reports():
    assert DEFAULT_LOADS == (0.25, 0.50, 0.75, 1.00)


def test_sweep_params_defaults():
    p = SweepParams()
    assert p.sizes == (8, 16)
    assert p.duration == 100.0
    assert p.pe_counts == (1, 2, 4)
    assert p.window == 2.0


def test_sweep_params_requires_sizes():
    with pytest.raises(ValueError):
        SweepParams(sizes=())


def test_sequential_helper_runs():
    result = run_hotpotato_sequential(4, 1.0, 15.0, seed=1)
    assert result.run.engine == "sequential"
    assert result.model_stats["delivered"] > 0


def test_parallel_helper_batch_mode():
    result = run_hotpotato_parallel(
        4, 1.0, 15.0, 1, n_pes=2, n_kps=4, batch_size=16
    )
    assert result.run.engine == "optimistic"
    assert result.run.n_pes == 2


def test_parallel_helper_window_mode_raises_batch_cap():
    result = run_hotpotato_parallel(
        4, 1.0, 15.0, 1, n_pes=2, n_kps=4, batch_size=16, window=2.0
    )
    # Window mode runs fine and produces Time Warp activity on 2 PEs.
    assert result.run.committed > 0


def test_parallel_helper_forwards_overrides():
    result = run_hotpotato_parallel(
        4, 1.0, 15.0, 1, n_pes=2, n_kps=4, rollback="copy", mapping="striped"
    )
    assert result.run.committed > 0


def test_helpers_share_results_given_same_seed():
    a = run_hotpotato_sequential(4, 1.0, 15.0, seed=7)
    b = run_hotpotato_parallel(4, 1.0, 15.0, 7, n_pes=4, n_kps=8, mapping="striped")
    assert a.model_stats == b.model_stats
