"""Tests for replication statistics and the ASCII chart renderer."""

import pytest

from repro.analysis.asciichart import plot
from repro.analysis.replication import Estimate, replicate, summarize
from repro.experiments.report import Table
from repro.experiments.runner import chart_from_table


# ----------------------------------------------------------------------
# Replication.
# ----------------------------------------------------------------------
def test_single_sample_is_a_point_estimate():
    est = summarize([5.0])
    assert est.mean == 5.0
    assert est.half_width == 0.0
    assert est.n == 1


def test_interval_contains_mean_and_is_symmetric():
    est = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
    assert est.mean == 3.0
    assert est.low == pytest.approx(3.0 - est.half_width)
    assert est.high == pytest.approx(3.0 + est.half_width)
    assert est.half_width > 0


def test_known_t_interval():
    # n=4, sd≈0.8165, sem≈0.4082, t(0.975, 3)≈3.1824 → half-width ≈ 1.2992.
    est = summarize([1.0, 2.0, 3.0, 2.0])
    assert est.n == 4
    assert est.half_width == pytest.approx(1.2992, rel=1e-3)


def test_more_replications_tighter_interval():
    wide = summarize([1.0, 3.0])
    narrow = summarize([1.0, 3.0] * 10)
    assert narrow.half_width < wide.half_width


def test_identical_samples_zero_width():
    est = summarize([2.0] * 8)
    assert est.half_width == 0.0


def test_overlap_semantics():
    a = Estimate(mean=1.0, half_width=0.5, n=3, confidence=0.95)
    b = Estimate(mean=1.8, half_width=0.5, n=3, confidence=0.95)
    c = Estimate(mean=3.0, half_width=0.5, n=3, confidence=0.95)
    assert a.overlaps(b) and b.overlaps(a)
    assert not a.overlaps(c)


def test_summarize_validation():
    with pytest.raises(ValueError):
        summarize([])
    with pytest.raises(ValueError):
        summarize([1.0], confidence=1.0)


def test_replicate_runs_each_seed():
    seen = []

    def run(seed):
        seen.append(seed)
        return float(seed)

    est = replicate(run, seeds=[1, 2, 3])
    assert seen == [1, 2, 3]
    assert est.mean == 2.0
    with pytest.raises(ValueError):
        replicate(run, seeds=[])


def test_str_format():
    assert "±" in str(summarize([1.0, 2.0]))


# ----------------------------------------------------------------------
# ASCII charts.
# ----------------------------------------------------------------------
def test_plot_contains_series_and_legend():
    text = plot(
        {"lin": [(0, 0.0), (10, 10.0)], "flat": [(0, 5.0), (10, 5.0)]},
        title="T",
    )
    assert text.splitlines()[0] == "T"
    assert "*=lin" in text and "o=flat" in text
    assert "10" in text and "0" in text  # axis labels


def test_plot_extremes_placed_correctly():
    text = plot({"s": [(0, 0.0), (1, 1.0)]}, height=4, width=10)
    lines = text.splitlines()
    # Max y on the top row, min on the bottom row of the grid.
    assert "*" in lines[0]
    assert "*" in lines[3]


def test_plot_validation():
    with pytest.raises(ValueError):
        plot({})
    with pytest.raises(ValueError):
        plot({"a": []})
    with pytest.raises(ValueError):
        plot({"a": [(0, 1)]}, height=1)


def test_chart_from_table_numeric_series():
    t = Table(title="x", columns=["N", "a", "b"])
    t.add_row(1, 2.0, 3.0)
    t.add_row(2, 4.0, 5.0)
    chart = chart_from_table(t)
    assert chart is not None
    assert "*=a" in chart and "o=b" in chart


def test_chart_from_table_skips_non_numeric():
    t = Table(title="x", columns=["name", "value"])
    t.add_row("alpha", 1.0)
    t.add_row("beta", 2.0)
    assert chart_from_table(t) is None


def test_chart_from_table_skips_single_row():
    t = Table(title="x", columns=["N", "a"])
    t.add_row(1, 2.0)
    assert chart_from_table(t) is None


def test_chart_from_table_skips_mixed_column():
    t = Table(title="x", columns=["N", "a"])
    t.add_row(1, 2.0)
    t.add_row(2, "-")
    assert chart_from_table(t) is None
