"""Property-based tests for routing policies over random situations."""

from hypothesis import assume, given
from hypothesis import strategies as st

from repro.baselines.policies import (
    DimensionOrderPolicy,
    GreedyPolicy,
    RandomDeflectionPolicy,
)
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.packet import Priority
from repro.hotpotato.policy import BuschHotPotatoPolicy
from repro.net import TorusTopology
from repro.rng.streams import ReversibleStream

POLICIES = (
    BuschHotPotatoPolicy(),
    GreedyPolicy(),
    DimensionOrderPolicy(),
    RandomDeflectionPolicy(),
)

CFG = HotPotatoConfig(n=8)
TOPO = TorusTopology(8)


@st.composite
def situations(draw):
    node = draw(st.integers(min_value=0, max_value=63))
    dest = draw(st.integers(min_value=0, max_value=63))
    assume(dest != node)
    free = tuple(draw(st.booleans()) for _ in range(4))
    assume(any(free))  # bufferless invariant: at least one free link
    priority = Priority(draw(st.integers(min_value=0, max_value=3)))
    seed = draw(st.integers(min_value=0, max_value=2**32))
    return node, dest, free, priority, seed


@given(situations())
def test_chosen_direction_is_always_free(sit):
    node, dest, free, priority, seed = sit
    for policy in POLICIES:
        out = policy.route(
            TOPO, node, dest, priority, free, ReversibleStream(seed), CFG
        )
        assert free[out.direction], f"{policy.name} chose a busy link"


@given(situations())
def test_deflected_flag_matches_goodness(sit):
    node, dest, free, priority, seed = sit
    good = set(TOPO.good_dirs(node, dest))
    for policy in POLICIES:
        out = policy.route(
            TOPO, node, dest, priority, free, ReversibleStream(seed), CFG
        )
        assert out.deflected == (out.direction not in good)


@given(situations())
def test_good_link_taken_whenever_one_is_free(sit):
    node, dest, free, priority, seed = sit
    good_free = [d for d in TOPO.good_dirs(node, dest) if free[d]]
    for policy in POLICIES:
        out = policy.route(
            TOPO, node, dest, priority, free, ReversibleStream(seed), CFG
        )
        if good_free:
            assert not out.deflected, (
                f"{policy.name} deflected although a good link was free"
            )


@given(situations())
def test_priority_transitions_are_legal(sit):
    node, dest, free, priority, seed = sit
    out = BuschHotPotatoPolicy().route(
        TOPO, node, dest, priority, free, ReversibleStream(seed), CFG
    )
    new = out.new_priority
    if priority == Priority.SLEEPING:
        assert new in (Priority.SLEEPING, Priority.ACTIVE)
    elif priority == Priority.ACTIVE:
        assert new in (Priority.ACTIVE, Priority.EXCITED)
        if new == Priority.EXCITED:
            assert out.deflected
    elif priority == Priority.EXCITED:
        assert new in (Priority.ACTIVE, Priority.RUNNING)
    else:  # RUNNING
        assert new in (Priority.ACTIVE, Priority.RUNNING)
        if new == Priority.ACTIVE:
            assert out.demoted


@given(situations())
def test_baseline_policies_never_change_priority(sit):
    node, dest, free, priority, seed = sit
    for policy in POLICIES[1:]:
        out = policy.route(
            TOPO, node, dest, priority, free, ReversibleStream(seed), CFG
        )
        assert out.new_priority == Priority.ACTIVE
        assert not out.upgraded and not out.demoted


@given(situations())
def test_rng_draw_counts_bounded(sit):
    node, dest, free, priority, seed = sit
    for policy in POLICIES:
        stream = ReversibleStream(seed)
        policy.route(TOPO, node, dest, priority, free, stream, CFG)
        assert stream.count <= 1  # at most one draw per decision
