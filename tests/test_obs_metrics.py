"""Tests for the GVT-interval metrics sampler on all three engines."""

import pytest

from repro.core.config import EngineConfig
from repro.core.conservative import ConservativeConfig, run_conservative
from repro.core.engine import SequentialEngine, run_sequential
from repro.core.optimistic import TimeWarpKernel, run_optimistic
from repro.models.phold import PholdConfig, PholdModel
from repro.obs.metrics import MetricSample, MetricsRecorder

END = 15.0
PHOLD = PholdConfig(n_lps=16, jobs_per_lp=2, remote_fraction=0.7)


def test_interval_validation():
    with pytest.raises(ValueError):
        MetricsRecorder(interval=0)


def test_delta_computation():
    rec = MetricsRecorder()
    rec.sample(gvt=1.0, committed=10, processed=12, rolled_back=2)
    rec.sample(gvt=2.0, committed=25, processed=30, rolled_back=5)
    first, second = rec.samples
    assert (first.committed, first.processed, first.rolled_back) == (10, 12, 2)
    assert (second.committed, second.processed, second.rolled_back) == (15, 18, 3)
    assert second.round == 1


def test_kp_delta_keeps_only_movers():
    rec = MetricsRecorder()
    rec.sample(gvt=1.0, committed=0, processed=0, kp_rolled_back=[0, 3, 0])
    rec.sample(gvt=2.0, committed=0, processed=0, kp_rolled_back=[1, 3, 7])
    assert rec.samples[0].kp_rolled_back == {1: 3}
    assert rec.samples[1].kp_rolled_back == {0: 1, 2: 7}


def test_sample_round_trips_through_dict():
    rec = MetricsRecorder()
    s = rec.sample(
        gvt=3.5, committed=7, processed=9, rolled_back=2, rollbacks=1,
        stragglers=1, fossil_collected=7, pending=4, processed_depth=2,
        throttle=0.5, pool_hit_rate=0.75, kp_rolled_back=[2, 0],
    )
    assert MetricSample.from_dict(s.as_dict()) == s


def test_optimistic_samples_sum_to_totals():
    rec = MetricsRecorder()
    result = run_optimistic(
        PholdModel(PHOLD),
        EngineConfig(end_time=END, n_pes=4, n_kps=8, batch_size=64,
                     mapping="striped"),
        metrics=rec,
    )
    run = result.run
    assert rec.samples, "a GVT-round sampler must produce samples"
    assert sum(s.committed for s in rec.samples) == run.committed
    assert sum(s.processed for s in rec.samples) == run.processed
    assert sum(s.rolled_back for s in rec.samples) == run.events_rolled_back
    assert sum(s.rollbacks for s in rec.samples) == run.rollbacks
    assert sum(s.stragglers for s in rec.samples) == run.stragglers
    kp_total = sum(n for s in rec.samples for n in s.kp_rolled_back.values())
    assert kp_total == run.events_rolled_back
    assert all(s.gvt <= END for s in rec.samples)


def test_optimistic_fast_paths_stay_installed_with_metrics():
    kernel = TimeWarpKernel(
        PholdModel(PHOLD),
        EngineConfig(end_time=END, n_pes=2, n_kps=4, batch_size=32,
                     mapping="striped"),
    )
    kernel.attach_metrics(MetricsRecorder())
    kernel.run()
    # The fused execute closure replaces the bound method unless a tracer
    # is attached; a metrics recorder must not disable it.
    assert kernel.execute.__name__ == "fast_execute"


def test_metrics_do_not_perturb_results():
    plain = run_optimistic(
        PholdModel(PHOLD),
        EngineConfig(end_time=END, n_pes=4, n_kps=8, batch_size=64,
                     mapping="striped"),
    )
    observed = run_optimistic(
        PholdModel(PHOLD),
        EngineConfig(end_time=END, n_pes=4, n_kps=8, batch_size=64,
                     mapping="striped"),
        metrics=MetricsRecorder(),
    )
    assert observed.model_stats == plain.model_stats
    assert observed.run.committed == plain.run.committed
    assert observed.run.events_rolled_back == plain.run.events_rolled_back


def test_sequential_sampling_interval():
    rec = MetricsRecorder(interval=100)
    result = run_sequential(PholdModel(PHOLD), END, metrics=rec)
    run = result.run
    assert sum(s.committed for s in rec.samples) == run.committed
    # One sample per full interval plus the barrier sample.
    assert len(rec.samples) == run.committed // 100 + 1
    assert rec.samples[-1].gvt == END
    # Commit-as-you-go engines have no rollback activity or depth.
    assert all(s.rolled_back == 0 and s.processed_depth == 0 for s in rec.samples)
    # GVT (event timestamps) is nondecreasing.
    gvts = [s.gvt for s in rec.samples]
    assert gvts == sorted(gvts)


def test_sequential_detached_engine_has_no_recorder():
    engine = SequentialEngine(PholdModel(PHOLD), END)
    assert engine.metrics is None
    engine.run()


def test_conservative_samples_per_round():
    for sync in ("yawns", "null"):
        rec = MetricsRecorder()
        result = run_conservative(
            PholdModel(PHOLD),
            ConservativeConfig(end_time=END, n_pes=4, sync=sync),
            metrics=rec,
        )
        run = result.run
        assert rec.samples
        assert sum(s.committed for s in rec.samples) == run.committed
        assert all(s.gvt <= END for s in rec.samples)


def test_streaming_only_mode_keeps_nothing():
    class NullSink:
        def __init__(self):
            self.metric_lines = 0

        def write_metric(self, sample):
            self.metric_lines += 1

    sink = NullSink()
    rec = MetricsRecorder(sink, keep=False)
    run_sequential(PholdModel(PHOLD), END, metrics=rec)
    assert rec.samples == []
    assert sink.metric_lines == len(rec) > 0
