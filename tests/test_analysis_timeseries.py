"""Tests for the delivery-log time-series analysis and the commit-time log."""

import pytest

from repro.analysis.timeseries import DeliverySeries, build_series, warmup_end
from repro.core.config import EngineConfig
from repro.core.engine import run_sequential
from repro.core.optimistic import run_optimistic
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.model import HotPotatoModel


# ----------------------------------------------------------------------
# Pure series arithmetic.
# ----------------------------------------------------------------------
def test_empty_log():
    s = build_series([])
    assert s.steps == () and s.total == 0
    assert s.throughput() == 0.0


def test_bucketing_and_means():
    s = build_series([(3, 2), (3, 4), (5, 6)])
    assert s.steps == (3, 4, 5)
    assert s.counts == (2, 0, 1)
    assert s.mean_latency == (3.0, 0.0, 6.0)
    assert s.total == 3
    assert s.throughput() == pytest.approx(1.0)


def test_unsorted_log_ok():
    a = build_series([(5, 1), (3, 1), (4, 1)])
    b = build_series([(3, 1), (4, 1), (5, 1)])
    assert a == b


def test_warmup_end_detects_settling():
    # Ramp for 10 steps then steady at 10/step.
    log = []
    for step in range(10):
        log += [(step, 1)] * step
    for step in range(10, 60):
        log += [(step, 1)] * 10
    s = build_series(log)
    w = warmup_end(s, window=5)
    assert w is not None
    assert w <= 12  # settles right after the ramp


def test_warmup_none_when_too_short():
    assert warmup_end(build_series([(1, 1), (2, 1)]), window=5) is None


# ----------------------------------------------------------------------
# Commit-time log from real runs.
# ----------------------------------------------------------------------
CFG = HotPotatoConfig(n=6, duration=40.0, injector_fraction=1.0, delivery_log=True)


def test_log_matches_delivered_count_sequential():
    model = HotPotatoModel(CFG)
    result = run_sequential(model, CFG.duration)
    assert len(model.delivery_log) == result.model_stats["delivered"]
    total_latency = sum(dt for _, dt in model.delivery_log)
    avg = total_latency / len(model.delivery_log)
    assert avg == pytest.approx(result.model_stats["avg_delivery_time"])


def test_log_identical_across_engines():
    seq_model = HotPotatoModel(CFG)
    run_sequential(seq_model, CFG.duration)
    opt_model = HotPotatoModel(CFG)
    result = run_optimistic(
        opt_model,
        EngineConfig(
            end_time=CFG.duration, n_pes=4, n_kps=12, batch_size=64, mapping="striped"
        ),
    )
    assert result.run.events_rolled_back > 0
    # Commit order differs across engines; the multiset of deliveries must not.
    assert sorted(opt_model.delivery_log) == sorted(seq_model.delivery_log)


def test_log_off_by_default():
    cfg = HotPotatoConfig(n=4, duration=10.0)
    model = HotPotatoModel(cfg)
    run_sequential(model, cfg.duration)
    assert model.delivery_log == []


def test_real_run_series_has_steady_state():
    model = HotPotatoModel(
        HotPotatoConfig(n=6, duration=80.0, injector_fraction=1.0, delivery_log=True)
    )
    run_sequential(model, 80.0)
    series = build_series(model.delivery_log)
    assert series.total > 0
    w = warmup_end(series, window=5, tolerance=0.5)
    assert w is not None  # a loaded network reaches steady throughput
