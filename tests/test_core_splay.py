"""Tests for the splay-tree pending queue, including heap-parity properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import EngineConfig
from repro.core.engine import run_sequential
from repro.core.event import Event
from repro.core.optimistic import run_optimistic
from repro.core.queue import PendingQueue, make_pending_queue
from repro.core.splay import SplayPendingQueue
from repro.models.phold import PholdConfig, PholdModel
from repro.vt.time import EventKey


def ev(ts, origin=0, seq=0):
    return Event(EventKey(ts, origin, seq), 0, "k")


# ----------------------------------------------------------------------
# Basic interface parity with the heap.
# ----------------------------------------------------------------------
def test_pops_in_key_order():
    q = SplayPendingQueue()
    for i, ts in enumerate([5.0, 1.0, 3.0, 2.0, 4.0]):
        q.push(ev(ts, seq=i))
    assert [q.pop().ts for _ in range(5)] == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_peek_and_len():
    q = SplayPendingQueue()
    assert not q and q.peek() is None and q.peek_key() is None
    e = ev(2.0)
    q.push(e)
    assert q.peek() is e
    assert q.peek_key() == e.key
    assert len(q) == 1
    assert e.in_pending


def test_pop_empty_raises():
    with pytest.raises(IndexError):
        SplayPendingQueue().pop()


def test_cancelled_events_skipped():
    q = SplayPendingQueue()
    a, b = ev(1.0), ev(2.0, seq=1)
    q.push(a)
    q.push(b)
    a.cancelled = True
    q.note_cancelled()
    assert len(q) == 1
    assert q.pop() is b
    assert not a.in_pending  # reaped during min extraction
    assert not q


def test_duplicate_key_after_cancellation():
    q = SplayPendingQueue()
    old = ev(1.0)
    q.push(old)
    old.cancelled = True
    q.note_cancelled()
    new = ev(1.0)  # same key as the dead entry
    q.push(new)
    assert q.pop() is new


def test_iter_yields_live_events():
    q = SplayPendingQueue()
    events = [ev(float(i), seq=i) for i in range(10)]
    for e in events:
        q.push(e)
    events[3].cancelled = True
    q.note_cancelled()
    live = set(iter(q))
    assert live == set(events) - {events[3]}


def test_factory():
    assert isinstance(make_pending_queue("heap"), PendingQueue)
    assert isinstance(make_pending_queue("splay"), SplayPendingQueue)
    with pytest.raises(ValueError):
        make_pending_queue("btree")


# ----------------------------------------------------------------------
# Property: identical observable behavior to the heap.
# ----------------------------------------------------------------------
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("push"), st.floats(min_value=0, max_value=100)),
            st.tuples(st.just("pop"), st.just(0.0)),
            st.tuples(st.just("cancel_min"), st.just(0.0)),
        ),
        max_size=200,
    )
)
@settings(max_examples=100, deadline=None)
def test_splay_matches_heap_on_random_op_sequences(ops):
    heap, splay = PendingQueue(), SplayPendingQueue()
    seq = 0
    for op, ts in ops:
        if op == "push":
            seq += 1
            # Twin event objects: the structures own their own flags.
            heap.push(ev(ts, seq=seq))
            splay.push(ev(ts, seq=seq))
        elif op == "pop":
            if heap:
                assert splay.pop().key == heap.pop().key
            else:
                assert not splay
        else:  # cancel the current minimum in both
            if heap:
                h, s = heap.peek(), splay.peek()
                assert h.key == s.key
                h.cancelled = True
                s.cancelled = True
                heap.note_cancelled()
                splay.note_cancelled()
        assert len(heap) == len(splay)
    while heap:
        assert splay.pop().key == heap.pop().key
    assert not splay


# ----------------------------------------------------------------------
# Engine integration: identical results on either structure.
# ----------------------------------------------------------------------
def test_engine_results_identical_across_queue_structures():
    phold = PholdConfig(n_lps=32, jobs_per_lp=3, remote_fraction=0.7)
    oracle = run_sequential(PholdModel(phold), 20.0).model_stats
    for queue in ("heap", "splay"):
        cfg = EngineConfig(
            end_time=20.0,
            n_pes=4,
            n_kps=8,
            batch_size=32,
            mapping="striped",
            queue=queue,
        )
        result = run_optimistic(PholdModel(phold), cfg)
        assert result.model_stats == oracle
        assert result.run.events_rolled_back > 0
