"""JsonlSink crash tolerance: atomic lines, byte accounting, and the
loader's torn-tail discrimination.

A sink writes each record plus its newline in a single ``write`` call,
so a crash can only tear the *final, unterminated* line.  The loader
tolerates (and counts) exactly that case; a complete line of invalid
JSON — newline present — is corruption and must still raise.
"""

import pytest

from repro.core.trace import EXEC, TraceRecord
from repro.obs.recorder import JsonlSink, load_recording


def _valid_recording(path):
    """Write a small, cleanly closed recording; return its sink."""
    sink = JsonlSink(path)
    sink.write_header({"engine": "test"})
    sink.write_trace(
        EXEC, TraceRecord(action=EXEC, ts=1.0, origin=0, seq=0, dst=1, kind="pkt")
    )
    sink.write_stats({"committed": 1})
    sink.close()
    return sink


def test_sink_byte_counter_matches_file_size(tmp_path):
    path = tmp_path / "rec.jsonl"
    sink = _valid_recording(path)
    assert sink.bytes == path.stat().st_size
    assert sink.lines == len(path.read_text().splitlines())


def test_torn_final_line_tolerated_and_counted(tmp_path):
    path = tmp_path / "rec.jsonl"
    _valid_recording(path)
    clean = load_recording(path)
    assert clean.truncated_lines == 0

    # Tear the tail the way a crash does: a partial record, no newline.
    with path.open("a") as fh:
        fh.write('{"t": "stats", "commi')
    rec = load_recording(path)
    assert rec.truncated_lines == 1
    assert rec.stats == clean.stats
    assert len(rec.records) == len(clean.records)


def test_complete_garbage_final_line_rejected(tmp_path):
    path = tmp_path / "rec.jsonl"
    _valid_recording(path)
    with path.open("a") as fh:
        fh.write("not json\n")  # newline present: not a crash artifact
    with pytest.raises(ValueError, match="not valid JSON"):
        load_recording(path)


def test_garbage_mid_file_rejected(tmp_path):
    path = tmp_path / "rec.jsonl"
    _valid_recording(path)
    lines = path.read_text().splitlines(keepends=True)
    lines.insert(1, "XXXX garbage XXXX\n")
    path.write_text("".join(lines))
    with pytest.raises(ValueError, match="not valid JSON"):
        load_recording(path)


def test_resume_truncates_untrusted_tail(tmp_path):
    """JsonlSink.resume discards bytes past the checkpointed offset —
    including any torn line — and continues the recording seamlessly."""
    path = tmp_path / "rec.jsonl"
    sink = JsonlSink(path)
    sink.write_header({"engine": "test"})
    sink.write_trace(
        EXEC, TraceRecord(action=EXEC, ts=1.0, origin=0, seq=0, dst=1, kind="pkt")
    )
    state = {"bytes": sink.bytes, "lines": sink.lines, "header": True}
    # Post-checkpoint writes that the "crash" will lose, plus a torn tail.
    sink.write_trace(
        EXEC, TraceRecord(action=EXEC, ts=2.0, origin=0, seq=1, dst=2, kind="pkt")
    )
    sink.close()
    with path.open("a") as fh:
        fh.write('{"t": "trace", "a": "ex')

    resumed = JsonlSink.resume(path, state)
    resumed.write_stats({"committed": 1})
    resumed.close()
    rec = load_recording(path)
    assert rec.truncated_lines == 0
    assert len(rec.records) == 1 and rec.records[0].ts == 1.0
    assert rec.stats == {"committed": 1}
