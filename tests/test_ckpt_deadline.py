"""``wall_deadline``: the wall-clock cutoff shares Ctrl-C's snapshot path.

With a checkpointer the alarm only requests a deferred interrupt (final
snapshot at the next boundary, then KeyboardInterrupt); without one it
raises immediately.  The yielded callable distinguishes a deadline
(CLI exit 124) from a user interrupt (130).
"""

import time

import pytest

from repro.ckpt import Checkpointer, wall_deadline


def test_disabled_deadline_is_a_noop():
    for seconds in (None, 0, -1.0):
        with wall_deadline(seconds, None) as expired:
            assert not expired()
        assert not expired()


def test_deadline_without_checkpointer_raises_keyboard_interrupt():
    with pytest.raises(KeyboardInterrupt):
        with wall_deadline(0.05, None) as expired:
            time.sleep(5.0)
    assert expired()


def test_deadline_with_checkpointer_defers_to_the_boundary(tmp_path):
    """The alarm only flags the checkpointer; no exception mid-flight."""
    ckpt = Checkpointer(tmp_path / "ckpt", every=1)
    with wall_deadline(0.05, ckpt) as expired:
        deadline = time.monotonic() + 5.0
        while not ckpt.interrupted:
            assert time.monotonic() < deadline, "alarm never fired"
            time.sleep(0.01)
        # Mid-run state is untouched until the next boundary consumes
        # the flag (writes the final snapshot, raises KeyboardInterrupt).
        assert expired()


def test_deadline_disarms_on_exit():
    with wall_deadline(30.0, None) as expired:
        pass
    time.sleep(0.05)  # a leaked itimer would fire here
    assert not expired()


def test_hotpotato_cli_deadline_exits_124(tmp_path, capsys):
    from repro.hotpotato.__main__ import main

    code = main(
        ["--n", "8", "--duration", "1000000", "--deadline-seconds", "0.5"]
    )
    assert code == 124
    assert "deadline" in capsys.readouterr().err


def test_hotpotato_cli_deadline_writes_final_snapshot(tmp_path, capsys):
    from repro.ckpt import list_snapshots
    from repro.hotpotato.__main__ import main

    ckpt_dir = tmp_path / "ckpt"
    code = main(
        ["--n", "8", "--duration", "1000000",
         "--deadline-seconds", "0.5",
         "--checkpoint-dir", str(ckpt_dir),
         "--checkpoint-every", "1000000"]
    )
    assert code == 124
    # Snapshot cadence was effectively off, so the snapshot on disk is
    # the deadline's deferred final one.
    assert list_snapshots(ckpt_dir)
    assert "--resume" in capsys.readouterr().err


def test_experiments_cli_deadline_exits_124(capsys):
    from repro.experiments.runner import main

    code = main(
        ["fig3", "--sizes", "16", "--duration", "2000",
         "--deadline-seconds", "0.5"]
    )
    assert code == 124
    assert "deadline" in capsys.readouterr().err
