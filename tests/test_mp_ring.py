"""Unit tests for the shared-memory SPSC ring and the mp codecs.

The ring tests run single-process (both sides of the ring driven from
the test), which exercises exactly the byte-level machinery — cursor
arithmetic, wrap-around, full-stall refusal, and the lost-cursor-store
resilience (see the ``repro.mp.ring`` module docstring) — without the
scheduling nondeterminism of real workers.  Cross-process behaviour is
covered by ``tests/test_mp_determinism.py``.
"""

import struct

import pytest

from repro.core.event import Event
from repro.errors import ConfigurationError
from repro.mp.codec import ANTI, POSITIVE, EventCodec
from repro.mp.gvt import TOKEN, WaveCodec
from repro.mp.ring import _DATA_OFF, _TAIL_OFF, SpscRing
from repro.vt.time import EventKey, TIME_HORIZON


@pytest.fixture
def ring():
    r = SpscRing(size=_DATA_OFF + 256)
    yield r
    r.close()
    r.shm.unlink()


def test_ring_fifo_roundtrip(ring):
    frames = [bytes([i]) * (i + 1) for i in range(10)]
    for f in frames:
        assert ring.try_write(f)
    got = []
    while True:
        f = ring.try_read()
        if f is None:
            break
        got.append(f)
    assert got == frames
    assert ring.messages_written == 10
    assert ring.messages_read == 10
    assert ring.bytes_written == sum(len(f) for f in frames)
    assert ring.bytes_read == ring.bytes_written
    assert len(ring) == 0


def test_ring_wraparound_many_times(ring):
    """Frames of varying size pushed through a tiny ring for thousands
    of wraps: every frame must come back verbatim, in order."""
    import random

    rng = random.Random(0xB5EED)
    outstanding = []
    sent = received = 0
    while received < 5000:
        if outstanding and (len(outstanding) > 3 or rng.random() < 0.5):
            frame = ring.try_read()
            assert frame == outstanding.pop(0)
            received += 1
        else:
            frame = rng.randbytes(rng.randint(1, 60))
            if ring.try_write(frame):
                outstanding.append(frame)
                sent += 1
    assert ring.tail > ring.capacity  # really wrapped
    assert sent >= received


def test_ring_full_stall_and_recovery(ring):
    frame = b"x" * 60  # 64 bytes with the length prefix
    writes = 0
    while ring.try_write(frame):
        writes += 1
    assert writes == ring.capacity // 64
    assert ring.full_stalls == 1
    assert ring.try_read() == frame
    assert ring.try_write(frame)  # freed space is reusable immediately
    assert ring.full_stalls == 1


def test_ring_oversized_frame_refused(ring):
    with pytest.raises(ConfigurationError):
        ring.try_write(b"y" * (ring.capacity + 1))


def test_ring_empty_reads_none(ring):
    assert ring.try_read() is None
    ring.try_write(b"a")
    assert ring.try_read() == b"a"
    assert ring.try_read() is None


def test_ring_survives_reverted_tail_store(ring):
    """The production failure mode: the shared tail cursor spontaneously
    reverts to a stale value (observed as a lost store on a virtualized
    kernel).  The consumer must see "empty", never garbage, and the
    producer's republish heartbeat must make the frames visible again.
    """
    for i in range(4):
        assert ring.try_write(bytes([i]) * 8)
    assert ring.try_read() == bytes(8)
    # Simulate the lost store: shared tail reverts to its initial value.
    struct.pack_into("<Q", ring._buf, _TAIL_OFF, 0)
    assert ring.try_read() is None  # stale tail < head == empty, not IndexError
    assert len(ring) == 0  # clamped, never negative
    ring.republish_tail()  # the producer's heartbeat heals it
    assert ring.try_read() == bytes([1]) * 8
    assert ring.try_read() == bytes([2]) * 8
    # And the producer itself never trusts the shared copy: writes keep
    # appending after the true tail even while the shared one is stale.
    struct.pack_into("<Q", ring._buf, _TAIL_OFF, 0)
    assert ring.try_write(b"zzzz")
    assert ring.try_read() == bytes([3]) * 8
    assert ring.try_read() == b"zzzz"


def test_ring_survives_reverted_head_store(ring):
    """Twin scenario: the shared head reverts, so the producer
    under-estimates free space (full-stalls — safe) until the consumer's
    republish heartbeat restores it."""
    frame = b"x" * 60
    while ring.try_write(frame):
        pass
    for _ in range(ring.capacity // 64):
        assert ring.try_read() == frame
    # Revert the shared head: ring looks full again to the producer.
    struct.pack_into("<Q", ring._buf, 0, 0)
    stalls = ring.full_stalls
    assert not ring.try_write(frame)
    assert ring.full_stalls == stalls + 1
    ring.republish_head()
    assert ring.try_write(frame)
    assert ring.try_read() == frame


def test_ring_corrupt_length_raises(ring):
    """A zero or absurd length prefix (lost *data* store — never
    observed, but the blast radius would be silent garbage) fails loud."""
    ring.try_write(b"abcd")
    struct.pack_into("<I", ring._buf, _DATA_OFF, 0)
    with pytest.raises(ConfigurationError, match="corrupt frame length"):
        ring.try_read()


def test_ring_minimum_size_enforced():
    with pytest.raises(ConfigurationError):
        SpscRing(size=16)


# ----------------------------------------------------------------------
# EventCodec.
# ----------------------------------------------------------------------
_SCHEMA = {
    "arrive": (("packet", "I"), ("jitter", "d")),
    "tick": (),
}


def _event(ts=3.25, origin=7, seq=11, dst=5, kind="arrive", data=None):
    return Event(EventKey(ts, origin, seq), dst, kind, data)


def test_codec_positive_roundtrip_with_float_payload():
    codec = EventCodec(_SCHEMA)
    ev = _event(data={"packet": 42, "jitter": 0.1 + 0.2})  # not exactly 0.3
    frame = codec.encode_event(ev, uid=909)
    assert frame[0] == POSITIVE
    tag, uid, ts, origin, seq, dst, kind, data = codec.decode(frame)
    assert (tag, uid, kind) == ("pos", 909, "arrive")
    assert (ts, origin, seq, dst) == (3.25, 7, 11, 5)
    assert data["packet"] == 42
    assert data["jitter"] == 0.1 + 0.2  # f64 exact through the wire


def test_codec_payloadless_kind_roundtrip():
    codec = EventCodec(_SCHEMA)
    frame = codec.encode_event(_event(kind="tick"), uid=13)
    assert codec.decode(frame) == ("pos", 13, 3.25, 7, 11, 5, "tick", {})


def test_codec_anti_roundtrip():
    codec = EventCodec(_SCHEMA)
    frame = codec.encode_anti(_event(), uid=77)
    assert frame[0] == ANTI
    assert codec.decode(frame) == ("anti", 77, 3.25, 7, 11, 5)


def test_codec_refuses_unknown_kind_and_missing_schema():
    codec = EventCodec(_SCHEMA)
    with pytest.raises(ConfigurationError, match="not in the model's"):
        codec.encode_event(_event(kind="mystery"), uid=1)
    with pytest.raises(ConfigurationError, match="no mp event schema"):
        EventCodec({})
    with pytest.raises(ConfigurationError, match="corrupt ring frame"):
        codec.decode(b"\xff")


def test_codec_matches_hotpotato_model_schema():
    """The bundled workload's declared schema must build a codec and
    carry its cross-worker kind (ARRIVE) losslessly."""
    from repro.hotpotato.config import HotPotatoConfig
    from repro.hotpotato.model import HotPotatoModel

    model = HotPotatoModel(HotPotatoConfig(n=4))
    codec = EventCodec(model.mp_event_schema())
    schema = model.mp_event_schema()
    kind = sorted(schema)[0]
    data = {name: 1 for name, _ in schema[kind]}
    ev = _event(kind=kind, data=data)
    decoded = codec.decode(codec.encode_event(ev, uid=5))
    assert decoded[6] == kind
    assert decoded[7] == data


# ----------------------------------------------------------------------
# WaveCodec.
# ----------------------------------------------------------------------
def test_wave_token_roundtrip():
    codec = WaveCodec(3)
    slots = [(10, 9, 1.5, False), (4, 5, TIME_HORIZON, True), (0, 0, 2.25, False)]
    frame = codec.encode_token(7, slots)
    assert frame[0] == TOKEN
    assert codec.decode_token(frame) == (7, slots)


def test_wave_result_roundtrip():
    frame = WaveCodec.encode_result(12.5, stop=True, intr=False)
    assert WaveCodec.decode_result(frame) == (12.5, True, False)
    frame = WaveCodec.encode_result(0.0, stop=False, intr=True)
    assert WaveCodec.decode_result(frame) == (0.0, False, True)


def test_wave_codec_needs_two_workers():
    with pytest.raises(ConfigurationError):
        WaveCodec(1)
