"""Setup shim.

All metadata lives in pyproject.toml; this file exists so editable installs
work on offline machines whose setuptools lacks the ``wheel`` package
(``pip install -e . --no-build-isolation --no-use-pep517``).
"""

from setuptools import setup

setup()
