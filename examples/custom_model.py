"""Writing your own model on the Time Warp kernel.

The kernel is general-purpose: any collection of logical processes with
``forward``/``reverse`` handlers runs on both engines.  This example builds
a small *token ring* from scratch — each node passes a token to its right
neighbor after a random hold time, counting how often it held the token —
and verifies sequential/optimistic equivalence.

What a model author supplies:

* ``on_init``    — bootstrap events,
* ``forward``    — mutate state, draw randomness via ``self.rng``, call
  ``self.send``; stash anything reverse needs in ``event.saved``,
* ``reverse``    — undo the state writes (the kernel un-sends messages and
  rewinds the RNG automatically),
* a ``Model``    — builds the LP list and aggregates statistics.

Run with::

    python examples/custom_model.py
"""

from repro.core import EngineConfig, Event, LogicalProcess, Model
from repro.core import run_optimistic, run_sequential

TOKEN = "TOKEN"


class RingNode(LogicalProcess):
    """One node of the token ring."""

    def __init__(self, lp_id: int, ring_size: int, tokens: int):
        super().__init__(lp_id)
        self.ring_size = ring_size
        self.tokens = tokens
        self.state = {"holds": 0, "max_gap": 0.0, "last_seen": 0.0}

    def on_init(self) -> None:
        # Node 0 launches the tokens, staggered.
        if self.id == 0:
            for i in range(self.tokens):
                self.send(0.5 + 0.1 * i, self.id, TOKEN)

    def forward(self, event: Event) -> None:
        s = self.state
        s["holds"] += 1
        gap = event.ts - s["last_seen"]
        event.saved["prev"] = (s["max_gap"], s["last_seen"])
        if gap > s["max_gap"]:
            s["max_gap"] = gap
        s["last_seen"] = event.ts
        hold = 0.05 + self.rng.exponential(0.5)
        self.send(event.ts + hold, (self.id + 1) % self.ring_size, TOKEN)

    def reverse(self, event: Event) -> None:
        s = self.state
        s["holds"] -= 1
        s["max_gap"], s["last_seen"] = event.saved["prev"]


class TokenRingModel(Model):
    def __init__(self, ring_size: int = 12, tokens: int = 3):
        self.ring_size = ring_size
        self.tokens = tokens

    def build(self):
        return [RingNode(i, self.ring_size, self.tokens) for i in range(self.ring_size)]

    def collect_stats(self, lps):
        holds = [lp.state["holds"] for lp in lps]
        return {
            "total_holds": sum(holds),
            "per_node_holds": tuple(holds),
            "max_gap": max(lp.state["max_gap"] for lp in lps),
        }


def main() -> None:
    end = 100.0
    seq = run_sequential(TokenRingModel(), end, seed=3)
    print("sequential:", seq.model_stats["total_holds"], "token holds")

    cfg = EngineConfig(
        end_time=end, n_pes=3, n_kps=6, batch_size=64, mapping="striped", seed=3
    )
    par = run_optimistic(TokenRingModel(), cfg)
    print(
        f"time-warp : {par.model_stats['total_holds']} token holds, "
        f"{par.run.events_rolled_back} events rolled back on the way"
    )
    print("identical :", par.model_stats == seq.model_stats)
    assert par.model_stats == seq.model_stats


if __name__ == "__main__":
    main()
