"""Capacity study for a bufferless optical switching fabric.

Hot-potato routing targets optical networks where packets cannot be
buffered without leaving the optical domain (§1.1.1).  This study answers
the questions a fabric designer would ask:

1. How does delivery latency scale with the fabric size and offered load?
2. How long do sources wait to inject when the fabric is saturated?
3. How much raw link capacity does deflection routing actually use,
   compared with a conventional buffered fabric throttled by flow control?

Run with::

    python examples/optical_switch_study.py
"""

from repro.baselines import BufferedConfig, BufferedModel
from repro.core.engine import run_sequential
from repro.experiments.report import Table
from repro.hotpotato import HotPotatoConfig, HotPotatoModel

SIZES = (4, 8, 12)
LOADS = (0.25, 0.5, 1.0)
DURATION = 120.0


def latency_and_wait() -> None:
    table = Table(
        title="Hot-potato fabric: latency and injection wait",
        columns=["N", "load", "delivered", "avg latency", "avg wait", "deflect %"],
    )
    for n in SIZES:
        for load in LOADS:
            cfg = HotPotatoConfig(n=n, duration=DURATION, injector_fraction=load)
            ms = run_sequential(HotPotatoModel(cfg), DURATION, seed=7).model_stats
            table.add_row(
                n,
                f"{int(load * 100)}%",
                ms["delivered"],
                ms["avg_delivery_time"],
                ms["avg_inject_wait"],
                100 * ms["deflection_rate"],
            )
    print(table.to_text())
    print()


def utilization_contrast() -> None:
    table = Table(
        title="Link utilisation: deflection vs flow control (N=8, full load)",
        columns=["fabric", "delivered", "avg latency", "link util %"],
    )
    hp_cfg = HotPotatoConfig(n=8, duration=DURATION, injector_fraction=1.0, heartbeat=True)
    hp = run_sequential(HotPotatoModel(hp_cfg), DURATION, seed=7).model_stats
    table.add_row(
        "hot-potato (bufferless)",
        hp["delivered"],
        hp["avg_delivery_time"],
        100 * hp["link_utilization"],
    )
    for window in (2, 4, 8):
        b_cfg = BufferedConfig(n=8, duration=DURATION, window=window)
        bm = run_sequential(BufferedModel(b_cfg), DURATION, seed=7).model_stats
        table.add_row(
            f"buffered, window={window}",
            bm["delivered"],
            bm["avg_delivery_time"],
            100 * bm["link_utilization"],
        )
    print(table.to_text())
    print()
    print(
        "The bufferless fabric keeps nearly every link busy every step;\n"
        "the flow-controlled fabric idles links to protect its buffers —\n"
        "the under-utilisation the paper's title alludes to (§1.2.3)."
    )


def static_drain() -> None:
    # The static (one-shot) analysis: fill the network, stop injecting,
    # and watch it drain — the configuration of Das et al. [2].
    cfg = HotPotatoConfig(n=8, duration=400.0, injector_fraction=0.0)
    ms = run_sequential(HotPotatoModel(cfg), cfg.duration, seed=7).model_stats
    print("Static mode: full fabric, no injection")
    print(f"  seeded packets : {ms['initial_packets']}")
    print(f"  delivered      : {ms['delivered']} (drained: {ms['delivered'] == ms['initial_packets']})")
    print(f"  worst delivery : {ms['max_delivery_time']} steps")


if __name__ == "__main__":
    latency_and_wait()
    utilization_contrast()
    static_drain()
