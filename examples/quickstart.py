"""Quickstart: simulate hot-potato routing on an 8x8 optical torus.

Run with::

    python examples/quickstart.py
"""

from repro import HotPotatoConfig, run_sequential
from repro.hotpotato import HotPotatoModel, HotPotatoSimulation


def main() -> None:
    # An 8x8 bufferless torus, every router injecting, 200 time steps.
    cfg = HotPotatoConfig(n=8, duration=200.0, injector_fraction=1.0)
    result = run_sequential(HotPotatoModel(cfg), cfg.duration, seed=42)

    ms = result.model_stats
    print(f"network             : {cfg.n}x{cfg.n} torus, bufferless")
    print(f"simulated steps     : {cfg.duration:.0f}")
    print(f"events committed    : {result.run.committed:,}")
    print(f"packets injected    : {ms['injected']:,} (+{ms['initial_packets']} initial fill)")
    print(f"packets delivered   : {ms['delivered']:,}")
    print(f"avg delivery time   : {ms['avg_delivery_time']:.2f} steps")
    print(f"max delivery time   : {ms['max_delivery_time']} steps")
    print(f"avg wait to inject  : {ms['avg_inject_wait']:.2f} steps")
    print(f"deflection rate     : {100 * ms['deflection_rate']:.1f}% of hops")
    print(
        "priority upgrades   : "
        f"{ms['upgrades_sleeping']} sleeping->active, "
        f"{ms['upgrades_active']} active->excited, "
        f"{ms['promotions_running']} excited->running"
    )

    # The same model runs unchanged on the optimistic parallel engine and
    # must produce *identical* results (the report's repeatability check).
    sim = HotPotatoSimulation(cfg, seed=42)
    parallel = sim.run_parallel(n_pes=4, n_kps=16)
    identical = parallel.model_stats == ms
    print(f"\nTime Warp (4 PEs)   : {parallel.run.events_rolled_back:,} events rolled back")
    print(f"results identical   : {identical}")
    assert identical


if __name__ == "__main__":
    main()
