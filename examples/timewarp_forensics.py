"""Forensics toolkit tour: tracing, lazy cancellation, adaptive optimism.

Three things a simulator developer reaches for when an optimistic run
misbehaves, demonstrated on one workload:

1. the event **tracer** — who executed, who rolled back, who thrashed,
   and the event-level proof that the optimistic run committed exactly
   the sequential sequence;
2. **lazy cancellation** — how much rollback traffic disappears when
   identical re-sends are reused in place;
3. the **adaptive throttle** — what happens to wasted work when the
   engine regulates its own optimism on a hostile (random) LP mapping.

Run with::

    python examples/timewarp_forensics.py
"""

from repro.core import EngineConfig, SequentialEngine, TimeWarpKernel, Tracer
from repro.experiments.report import Table
from repro.hotpotato import HotPotatoConfig, HotPotatoModel

CFG = HotPotatoConfig(n=6, duration=60.0, injector_fraction=1.0)
END = CFG.duration


def traced_sequential():
    tracer = Tracer()
    engine = SequentialEngine(HotPotatoModel(CFG), END).attach_tracer(tracer)
    result = engine.run()
    return tracer, result


def traced_optimistic(**kw):
    kw.setdefault("mapping", "striped")
    tracer = Tracer()
    kernel = TimeWarpKernel(HotPotatoModel(CFG), EngineConfig(end_time=END, **kw))
    kernel.attach_tracer(tracer)
    result = kernel.run()
    return tracer, result


def main() -> None:
    seq_tracer, seq = traced_sequential()
    opt_tracer, opt = traced_optimistic(n_pes=4, n_kps=12, batch_size=64)

    print("1. Event-level repeatability")
    print(f"   sequential committed : {seq_tracer.counts['COMMIT']:,} events")
    print(
        f"   optimistic committed : {opt_tracer.counts['COMMIT']:,} events "
        f"(after {opt_tracer.counts['UNDO']:,} undos)"
    )
    identical = opt_tracer.committed_sequence() == seq_tracer.committed_sequence()
    print(f"   committed sequences identical: {identical}")
    assert identical

    thrash = opt_tracer.thrash_by_lp()
    worst = sorted(thrash.items(), key=lambda kv: -kv[1])[:5]
    print("   worst-thrashing routers:", ", ".join(f"lp{l} x{c}" for l, c in worst))
    print("   last trace lines:")
    for line in opt_tracer.format(last=3).splitlines():
        print(f"     {line}")

    print("\n2. Cancellation policy")
    table = Table(
        title="",
        columns=["cancellation", "rolled back", "cancelled", "reused"],
    )
    for mode in ("aggressive", "lazy"):
        _, result = traced_optimistic(
            n_pes=4, n_kps=12, batch_size=64, cancellation=mode
        )
        rs = result.run
        table.add_row(
            mode,
            rs.events_rolled_back,
            rs.cancelled_direct + rs.cancelled_via_rollback,
            rs.lazy_reused,
        )
        assert result.model_stats == seq.model_stats
    print(table.to_text())

    print("\n3. Adaptive optimism on a hostile mapping")
    for adaptive in (False, True):
        _, result = traced_optimistic(
            n_pes=4,
            n_kps=12,
            batch_size=512,
            mapping="random",
            adaptive=adaptive,
        )
        rs = result.run
        label = "adaptive" if adaptive else "fixed   "
        print(
            f"   {label}: rolled back {rs.events_rolled_back:>6,}  "
            f"wasted {100 * (1 - rs.efficiency_ratio):4.1f}%  "
            f"final optimism factor {rs.throttle_final_factor:.3f}"
        )
        assert result.model_stats == seq.model_stats
    print("\nall configurations committed identical results.")


if __name__ == "__main__":
    main()
