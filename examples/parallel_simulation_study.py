"""Time Warp study: speed-up, rollback containment and repeatability.

Reproduces the report's §4.2 analysis interactively: run the identical
hot-potato model sequentially and on 2/4 simulated PEs, verify the results
are bit-identical, and show how the KP count contains rollbacks.

Run with::

    python examples/parallel_simulation_study.py
"""

from repro.analysis.speedup import efficiency
from repro.experiments.report import Table
from repro.hotpotato import HotPotatoConfig, HotPotatoSimulation

CFG = HotPotatoConfig(n=8, duration=120.0, injector_fraction=1.0)


def speedup_study(sim: HotPotatoSimulation, oracle) -> None:
    table = Table(
        title="Engine comparison (identical model, identical results)",
        columns=["engine", "PEs", "rolled back", "event rate (ev/s)", "efficiency", "identical"],
    )
    seq_rate = oracle.run.event_rate
    table.add_row("sequential", 1, 0, seq_rate, 1.0, True)
    for n_pes in (2, 4):
        result = sim.run_parallel(
            n_pes=n_pes, n_kps=16, window=2.0, batch_size=1 << 20
        )
        table.add_row(
            "time-warp",
            n_pes,
            result.run.events_rolled_back,
            result.run.event_rate,
            efficiency(seq_rate, result.run.event_rate, n_pes),
            result.model_stats == oracle.model_stats,
        )
    print(table.to_text())
    print()


def kp_study(sim: HotPotatoSimulation, oracle) -> None:
    table = Table(
        title="Kernel processes contain rollbacks (4 PEs)",
        columns=["KPs", "rollbacks", "events rolled back", "false rollback events", "identical"],
    )
    for n_kps in (4, 16, 64):
        result = sim.run_parallel(
            n_pes=4, n_kps=n_kps, window=2.0, batch_size=1 << 20
        )
        run = result.run
        table.add_row(
            n_kps,
            run.rollbacks,
            run.events_rolled_back,
            run.false_rollback_events,
            result.model_stats == oracle.model_stats,
        )
    print(table.to_text())
    print()
    print(
        "More KPs -> each straggler rolls back a smaller group of LPs, so\n"
        "fewer innocent ('false') events are undone (§4.2.3, Figs 7a-c)."
    )


def main() -> None:
    sim = HotPotatoSimulation(CFG, seed=11)
    oracle = sim.run()
    print(
        f"oracle: {oracle.run.committed:,} events committed, "
        f"{oracle.model_stats['delivered']:,} packets delivered\n"
    )
    speedup_study(sim, oracle)
    kp_study(sim, oracle)


if __name__ == "__main__":
    main()
