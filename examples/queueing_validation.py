"""Validating the kernel against queueing theory.

The kernel isn't only for routing: this example runs the tandem M/M/1
model (`repro.models.mm1`) and compares the measured utilisation, mean
queue length L, and sojourn time W against their closed forms —
ρ = λ/μ, L = ρ/(1-ρ), W = 1/(μ-λ) — plus Little's law L = λW.  It then
re-runs the exact simulation on the Time Warp engine (with a
pipeline-hostile LP placement to force thousands of rollbacks) and on the
conservative null-message engine, confirming all three agree bit-exactly.

Run with::

    python examples/queueing_validation.py
"""

from repro.core import ConservativeConfig, EngineConfig
from repro.core import run_conservative, run_optimistic, run_sequential
from repro.experiments.report import Table
from repro.models.mm1 import MM1Config, MM1Model

HORIZON = 5000.0
SEED = 17


def station_metrics(stats) -> tuple[float, float, float]:
    s = dict(stats["per_station"][0])
    horizon = s["last_change"]
    return (
        s["busy_area"] / horizon,  # utilisation
        s["area"] / horizon,  # L
        s["completed"] / horizon,  # effective λ
    )


def theory_table() -> None:
    table = Table(
        title=f"M/M/1 vs closed form ({HORIZON:.0f} time units)",
        columns=["λ", "metric", "theory", "measured", "rel err %"],
    )
    for lam in (0.3, 0.5, 0.7):
        cfg = MM1Config(stations=1, arrival_rate=lam, service_rate=1.0)
        result = run_sequential(MM1Model(cfg), HORIZON, seed=SEED)
        util, L, lam_eff = station_metrics(result.model_stats)
        W = result.model_stats["mean_total_sojourn"] - 0.1  # two transfers
        rows = [
            ("utilisation ρ", cfg.rho, util),
            ("mean in system L", cfg.expected_in_system, L),
            ("sojourn W", cfg.expected_sojourn, W),
            ("Little's law L-λW", 0.0, L - lam_eff * W),
        ]
        for name, theory, measured in rows:
            err = (
                abs(measured - theory) / theory * 100 if theory else abs(measured)
            )
            table.add_row(lam, name, theory, measured, err)
    print(table.to_text())
    print()


def engine_agreement() -> None:
    cfg = MM1Config(stations=3, arrival_rate=0.5, service_rate=1.0)
    end = 500.0
    seq = run_sequential(MM1Model(cfg), end, seed=1)
    tw = run_optimistic(
        MM1Model(cfg),
        EngineConfig(
            end_time=end, n_pes=3, n_kps=3, batch_size=64,
            mapping="random",  # scatter the pipeline: upstream stages run late
            seed=1,
        ),
    )
    cons = run_conservative(
        MM1Model(cfg),
        ConservativeConfig(end_time=end, n_pes=3, sync="null", mapping="striped", seed=1),
    )
    print("Engine agreement (3-station tandem, 500 time units):")
    print(f"  sequential  : {seq.run.committed:,} events")
    print(
        f"  time-warp   : {tw.run.committed:,} events, "
        f"{tw.run.events_rolled_back:,} rolled back  "
        f"-> identical: {tw.model_stats == seq.model_stats}"
    )
    print(
        f"  conservative: {cons.run.committed:,} events, 0 rolled back "
        f"-> identical: {cons.model_stats == seq.model_stats}"
    )
    assert tw.model_stats == seq.model_stats
    assert cons.model_stats == seq.model_stats


if __name__ == "__main__":
    theory_table()
    engine_agreement()
